//! The persistent scheduler: a worker pool with warm per-worker state over
//! a [`WorkQueue`].

use crate::queue::WorkQueue;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Warm per-worker state.
///
/// Every worker thread constructs one context when it starts and hands a
/// `&mut` of it to every job it runs, so expensive reusable state (a
/// `MaterializeCtx`, a warm emulator pair, scratch buffers) survives from
/// job to job instead of being rebuilt per job. Contexts are created *on*
/// the worker thread and never move across threads, so they do not need to
/// be `Send`.
///
/// Correctness rule for deterministic workloads: a context must only carry
/// *scratch* state (buffers, caches keyed by their inputs), never state
/// that changes job results — job outcomes have to be a function of the job
/// alone so a 1-worker and an N-worker pool produce identical results. In
/// particular, a context must not hold RNG state that jobs consume:
/// protection seeds always travel inside the job itself.
pub trait WorkerCtx: 'static {
    /// Builds the context for worker `worker` (0-based). Runs on the worker
    /// thread itself.
    fn create(worker: usize) -> Self;
}

/// The stateless context: workers hold nothing between jobs.
impl WorkerCtx for () {
    fn create(_worker: usize) {}
}

/// Cancellation/introspection handle passed to every running job.
pub struct JobCtl {
    cancelled: Arc<AtomicBool>,
    worker: usize,
}

impl JobCtl {
    /// Whether [`JobHandle::cancel`] was called for this job. Long-running
    /// jobs should poll this and bail out early; the scheduler never
    /// interrupts a running job preemptively.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The 0-based index of the worker running this job.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

/// Timing and placement record of one finished job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStats {
    /// Time the job spent queued before a worker picked it up.
    pub queued: Duration,
    /// Time the job spent running (zero for jobs cancelled while queued).
    pub run: Duration,
    /// The worker that handled the job.
    pub worker: usize,
}

/// How a job ended.
#[derive(Debug)]
pub enum JobOutcome<R> {
    /// The job ran to completion.
    Completed(R),
    /// The job was cancelled before a worker started it, or it observed
    /// [`JobCtl::is_cancelled`] and returned through a cancellation path of
    /// its own (in which case it is `Completed` with whatever it returned).
    Cancelled,
    /// The job panicked; the worker recovered and rebuilt its context.
    Panicked(String),
}

/// A finished job: outcome plus stats.
#[derive(Debug)]
pub struct JobDone<R> {
    /// How the job ended.
    pub outcome: JobOutcome<R>,
    /// Timing and placement.
    pub stats: JobStats,
}

impl<R> JobDone<R> {
    /// The completed result, panicking on cancellation/job panic. For
    /// callers that never cancel and treat a job panic as fatal.
    pub fn expect_completed(self) -> R {
        match self.outcome {
            JobOutcome::Completed(r) => r,
            JobOutcome::Cancelled => panic!("job was cancelled"),
            JobOutcome::Panicked(msg) => panic!("job panicked: {msg}"),
        }
    }
}

enum Slot {
    Pending,
    Done(Option<Box<dyn Any + Send>>, JobStats, Option<String>),
    Taken,
}

struct JobShared {
    cancelled: Arc<AtomicBool>,
    slot: Mutex<Slot>,
    done: Condvar,
}

impl JobShared {
    fn finish(&self, result: Option<Box<dyn Any + Send>>, stats: JobStats, panic: Option<String>) {
        *self.slot.lock().expect("job slot") = Slot::Done(result, stats, panic);
        self.done.notify_all();
    }
}

/// A handle on one submitted job: wait for the result, or cancel it.
pub struct JobHandle<R> {
    shared: Arc<JobShared>,
    _result: PhantomData<fn() -> R>,
}

impl<R> std::fmt::Debug for JobHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match *self.shared.slot.lock().expect("job slot") {
            Slot::Pending => "pending",
            Slot::Done(..) => "done",
            Slot::Taken => "taken",
        };
        f.debug_struct("JobHandle").field("state", &state).finish()
    }
}

fn decode_outcome<R: Any + Send>(
    result: Option<Box<dyn Any + Send>>,
    panic: Option<String>,
) -> JobOutcome<R> {
    match (result, panic) {
        (Some(boxed), _) => {
            JobOutcome::Completed(*boxed.downcast::<R>().expect("job result type matches submit"))
        }
        (None, Some(msg)) => JobOutcome::Panicked(msg),
        (None, None) => JobOutcome::Cancelled,
    }
}

impl<R: Any + Send> JobHandle<R> {
    /// Blocks until the job finishes and returns its outcome and stats.
    pub fn wait(self) -> JobDone<R> {
        let mut slot = self.shared.slot.lock().expect("job slot");
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Done(result, stats, panic) => {
                    return JobDone { outcome: decode_outcome(result, panic), stats };
                }
                pending => {
                    *slot = pending;
                    slot = self.shared.done.wait(slot).expect("job slot");
                }
            }
        }
    }

    /// Waits for the job for at most `timeout`. On timeout the handle comes
    /// back in `Err` — nothing is lost, the caller can keep polling, cancel,
    /// or [`Scheduler::requeue`] the job later.
    pub fn wait_timeout(self, timeout: Duration) -> Result<JobDone<R>, JobHandle<R>> {
        let deadline = Instant::now() + timeout;
        {
            let mut slot = self.shared.slot.lock().expect("job slot");
            loop {
                match std::mem::replace(&mut *slot, Slot::Taken) {
                    Slot::Done(result, stats, panic) => {
                        return Ok(JobDone { outcome: decode_outcome(result, panic), stats });
                    }
                    pending => {
                        *slot = pending;
                        let Some(remaining) = deadline.checked_duration_since(Instant::now())
                        else {
                            break;
                        };
                        slot = self.shared.done.wait_timeout(slot, remaining).expect("job slot").0;
                    }
                }
            }
        }
        Err(self)
    }

    /// Requests cancellation. A job still queued is dropped unrun (its
    /// outcome becomes [`JobOutcome::Cancelled`]); a job already running
    /// only observes this through [`JobCtl::is_cancelled`].
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the job has finished (completed, cancelled or panicked).
    pub fn is_finished(&self) -> bool {
        !matches!(*self.shared.slot.lock().expect("job slot"), Slot::Pending)
    }
}

struct QueuedJob<C> {
    #[allow(clippy::type_complexity)]
    fun: Box<dyn FnOnce(&mut C, &JobCtl) -> Box<dyn Any + Send> + Send>,
    shared: Arc<JobShared>,
    /// When this attempt entered the queue (a requeued job restarts the
    /// clock — queued time is a property of the attempt, not the handle).
    submitted: Instant,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
}

/// Aggregate scheduler statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled before they started.
    pub cancelled: u64,
    /// Jobs that panicked.
    pub panicked: u64,
    /// Jobs stolen from another worker's local shard.
    pub stolen: u64,
}

/// A persistent thread-pool scheduler with warm per-worker state.
///
/// Workers are spawned at construction, each owning one
/// [`WorkerCtx`]; jobs are closures over `(&mut C, &JobCtl)` submitted with
/// a priority and waited on through their [`JobHandle`]. Result types may
/// differ from job to job — the handle restores the concrete type — which
/// is what lets one scheduler instance serve heterogeneous work (protection
/// pipelines next to DSE campaigns).
///
/// Dropping the scheduler (or calling [`shutdown`](Scheduler::shutdown))
/// closes the queue, lets the workers drain every job already submitted,
/// and joins them.
///
/// # Example
///
/// ```
/// use raindrop_sched::Scheduler;
///
/// /// Warm per-worker state: an expensive buffer reused across jobs.
/// struct Scratch(Vec<u64>);
/// impl raindrop_sched::WorkerCtx for Scratch {
///     fn create(_worker: usize) -> Scratch {
///         Scratch(Vec::with_capacity(1024))
///     }
/// }
///
/// let sched: Scheduler<Scratch> = Scheduler::new(2);
/// let handles: Vec<_> = (0..8u64)
///     .map(|n| {
///         sched.submit(move |ctx: &mut Scratch, _ctl| {
///             ctx.0.clear();
///             ctx.0.extend(0..=n);
///             ctx.0.iter().sum::<u64>()
///         })
///     })
///     .collect();
/// let sums: Vec<u64> = handles.into_iter().map(|h| h.wait().expect_completed()).collect();
/// assert_eq!(sums, vec![0, 1, 3, 6, 10, 15, 21, 28]);
/// assert_eq!(sched.stats().completed, 8);
/// ```
pub struct Scheduler<C: WorkerCtx> {
    queue: Arc<WorkQueue<QueuedJob<C>>>,
    counters: Arc<Counters>,
    threads: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl<C: WorkerCtx> Scheduler<C> {
    /// Spawns a pool of `workers` threads (clamped to at least 1), each
    /// constructing its [`WorkerCtx`] up front.
    pub fn new(workers: usize) -> Scheduler<C> {
        let workers = workers.max(1);
        let queue: Arc<WorkQueue<QueuedJob<C>>> = Arc::new(WorkQueue::new(workers));
        let counters = Arc::new(Counters::default());
        let threads = (0..workers)
            .map(|w| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || worker_loop(w, &queue, &counters))
            })
            .collect();
        Scheduler { queue, counters, threads, workers }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submits a job at the default priority (0).
    pub fn submit<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Any + Send,
        F: FnOnce(&mut C, &JobCtl) -> R + Send + 'static,
    {
        self.submit_prio(0, f)
    }

    /// Submits a job with an explicit priority: higher-priority jobs are
    /// dequeued first, FIFO within a priority level.
    pub fn submit_prio<R, F>(&self, priority: i32, f: F) -> JobHandle<R>
    where
        R: Any + Send,
        F: FnOnce(&mut C, &JobCtl) -> R + Send + 'static,
    {
        let shared = Arc::new(JobShared {
            cancelled: Arc::new(AtomicBool::new(false)),
            slot: Mutex::new(Slot::Pending),
            done: Condvar::new(),
        });
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue.push(
            priority,
            QueuedJob {
                fun: Box::new(move |ctx, ctl| Box::new(f(ctx, ctl)) as Box<dyn Any + Send>),
                shared: Arc::clone(&shared),
                submitted: Instant::now(),
            },
        );
        JobHandle { shared, _result: PhantomData }
    }

    /// Resubmits work *under an existing handle* at a new priority: the
    /// straggler-defense path. Blocks until the handle's current attempt
    /// settles (typically instantly — the caller has just seen it time out
    /// and cancelled it), returns that superseded outcome, clears the
    /// cancellation flag and queues `f` as the handle's next attempt.
    /// `handle.wait()` afterwards observes the new attempt, so callers
    /// holding the handle never notice the job changed queues — "requeue at
    /// a different priority without losing the handle".
    pub fn requeue<R, F>(&self, handle: &JobHandle<R>, priority: i32, f: F) -> JobDone<R>
    where
        R: Any + Send,
        F: FnOnce(&mut C, &JobCtl) -> R + Send + 'static,
    {
        let superseded = {
            let mut slot = handle.shared.slot.lock().expect("job slot");
            loop {
                match std::mem::replace(&mut *slot, Slot::Pending) {
                    Slot::Done(result, stats, panic) => {
                        break JobDone { outcome: decode_outcome(result, panic), stats };
                    }
                    pending => {
                        *slot = pending;
                        slot = handle.shared.done.wait(slot).expect("job slot");
                    }
                }
            }
            // Guard dropped here with the slot reset to Pending: the handle
            // is live again before the new attempt can possibly finish.
        };
        handle.shared.cancelled.store(false, Ordering::Relaxed);
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue.push(
            priority,
            QueuedJob {
                fun: Box::new(move |ctx, ctl| Box::new(f(ctx, ctl)) as Box<dyn Any + Send>),
                shared: Arc::clone(&handle.shared),
                submitted: Instant::now(),
            },
        );
        superseded
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            workers: self.workers,
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            panicked: self.counters.panicked.load(Ordering::Relaxed),
            stolen: self.queue.stolen(),
        }
    }

    /// Closes the queue, drains every submitted job and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for t in self.threads.drain(..) {
            t.join().expect("scheduler worker thread");
        }
    }
}

impl<C: WorkerCtx> Drop for Scheduler<C> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop<C: WorkerCtx>(worker: usize, queue: &WorkQueue<QueuedJob<C>>, counters: &Counters) {
    let mut ctx = C::create(worker);
    while let Some(job) = queue.pop(worker) {
        let started = Instant::now();
        let queued = started.duration_since(job.submitted);
        if job.shared.cancelled.load(Ordering::Relaxed) {
            counters.cancelled.fetch_add(1, Ordering::Relaxed);
            job.shared.finish(None, JobStats { queued, run: Duration::ZERO, worker }, None);
            continue;
        }
        let ctl = JobCtl { cancelled: Arc::clone(&job.shared.cancelled), worker };
        let fun = job.fun;
        let result = catch_unwind(AssertUnwindSafe(|| fun(&mut ctx, &ctl)));
        let stats = JobStats { queued, run: started.elapsed(), worker };
        match result {
            Ok(boxed) => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                job.shared.finish(Some(boxed), stats, None);
            }
            Err(payload) => {
                counters.panicked.fetch_add(1, Ordering::Relaxed);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                job.shared.finish(None, stats, Some(msg));
                // The panicking job may have left the warm context in an
                // arbitrary state; rebuild it before the next job.
                ctx = C::create(worker);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_typed_and_heterogeneous() {
        let sched: Scheduler<()> = Scheduler::new(2);
        let a = sched.submit(|_, _| 41u64 + 1);
        let b = sched.submit(|_, _| "text".to_string());
        assert_eq!(a.wait().expect_completed(), 42);
        assert_eq!(b.wait().expect_completed(), "text");
        let stats = sched.stats();
        assert_eq!((stats.submitted, stats.completed), (2, 2));
    }

    #[test]
    fn worker_ctx_is_warm_across_jobs() {
        struct Counter(u64);
        impl WorkerCtx for Counter {
            fn create(_: usize) -> Counter {
                Counter(0)
            }
        }
        // One worker: every job sees the same context, so the per-job
        // increments accumulate.
        let sched: Scheduler<Counter> = Scheduler::new(1);
        let handles: Vec<_> = (0..5)
            .map(|_| {
                sched.submit(|ctx: &mut Counter, _| {
                    ctx.0 += 1;
                    ctx.0
                })
            })
            .collect();
        let seen: Vec<u64> = handles.into_iter().map(|h| h.wait().expect_completed()).collect();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cancellation_before_start_skips_the_job() {
        let sched: Scheduler<()> = Scheduler::new(1);
        // Low-priority blocker keeps the single worker busy long enough for
        // the cancel to land while the victim is still queued.
        let gate = Arc::new(AtomicBool::new(false));
        let blocker_gate = Arc::clone(&gate);
        let blocker = sched.submit(move |_, _| {
            while !blocker_gate.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        });
        let ran = Arc::new(AtomicBool::new(false));
        let victim_ran = Arc::clone(&ran);
        let victim = sched.submit(move |_, _| victim_ran.store(true, Ordering::Relaxed));
        victim.cancel();
        gate.store(true, Ordering::Relaxed);
        blocker.wait().expect_completed();
        assert!(matches!(victim.wait().outcome, JobOutcome::Cancelled));
        assert!(!ran.load(Ordering::Relaxed), "cancelled job never ran");
        assert_eq!(sched.stats().cancelled, 1);
    }

    #[test]
    fn panics_are_contained_and_the_ctx_is_rebuilt() {
        struct Tainted(bool);
        impl WorkerCtx for Tainted {
            fn create(_: usize) -> Tainted {
                Tainted(false)
            }
        }
        let sched: Scheduler<Tainted> = Scheduler::new(1);
        let bad = sched.submit(|ctx: &mut Tainted, _| {
            ctx.0 = true;
            panic!("boom");
            #[allow(unreachable_code)]
            0u8
        });
        let after = sched.submit(|ctx: &mut Tainted, _| ctx.0);
        match bad.wait().outcome {
            JobOutcome::Panicked(msg) => assert!(msg.contains("boom")),
            other => panic!("expected panic outcome, got {other:?}"),
        }
        assert!(!after.wait().expect_completed(), "context was rebuilt after the panic");
        assert_eq!(sched.stats().panicked, 1);
    }

    #[test]
    fn priorities_order_queued_work() {
        let sched: Scheduler<()> = Scheduler::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let blocker_gate = Arc::clone(&gate);
        let blocker = sched.submit(move |_, _| {
            while !blocker_gate.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        });
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = [(0, "low"), (9, "high"), (0, "low2")]
            .into_iter()
            .map(|(prio, tag)| {
                let order = Arc::clone(&order);
                sched.submit_prio(prio, move |_, _| order.lock().unwrap().push(tag))
            })
            .collect();
        gate.store(true, Ordering::Relaxed);
        blocker.wait().expect_completed();
        for h in handles {
            h.wait().expect_completed();
        }
        assert_eq!(*order.lock().unwrap(), vec!["high", "low", "low2"]);
    }

    #[test]
    fn job_stats_record_queue_and_run_time() {
        let sched: Scheduler<()> = Scheduler::new(1);
        let done = sched.submit(|_, _| std::thread::sleep(Duration::from_millis(2))).wait();
        assert!(done.stats.run >= Duration::from_millis(2));
        assert_eq!(done.stats.worker, 0);
    }

    #[test]
    fn wait_timeout_returns_the_handle_then_the_result() {
        let sched: Scheduler<()> = Scheduler::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let job_gate = Arc::clone(&gate);
        let handle = sched.submit(move |_, _| {
            while !job_gate.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
            7u32
        });
        // Gated job cannot finish: the timeout path must fire and hand the
        // handle back intact.
        let handle = match handle.wait_timeout(Duration::from_millis(5)) {
            Ok(_) => panic!("job finished while gated"),
            Err(h) => h,
        };
        gate.store(true, Ordering::Relaxed);
        // Released: a generous timeout now observes completion.
        let done = handle.wait_timeout(Duration::from_secs(60)).expect("job released");
        assert!(matches!(done.outcome, JobOutcome::Completed(7)));
    }

    #[test]
    fn requeue_reuses_the_handle_at_a_new_priority() {
        let sched: Scheduler<()> = Scheduler::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let blocker_gate = Arc::clone(&gate);
        let blocker = sched.submit(move |_, _| {
            while !blocker_gate.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        });
        // The straggler is cancelled while queued behind the blocker…
        let straggler: JobHandle<u32> = sched.submit(|_, _| 1);
        straggler.cancel();
        let low: JobHandle<&str> = sched.submit_prio(0, |_, _| "low ran");
        gate.store(true, Ordering::Relaxed);
        blocker.wait().expect_completed();
        // …requeue returns the superseded (cancelled) attempt and schedules
        // the replacement above the other queued work.
        let superseded = sched.requeue(&straggler, 9, |_, _| 2);
        assert!(matches!(superseded.outcome, JobOutcome::Cancelled));
        // The original handle observes the new attempt's result.
        assert_eq!(straggler.wait().expect_completed(), 2);
        assert_eq!(low.wait().expect_completed(), "low ran");
        let stats = sched.stats();
        assert_eq!((stats.submitted, stats.cancelled), (4, 1));
    }

    #[test]
    fn requeue_after_completion_runs_a_fresh_attempt() {
        let sched: Scheduler<()> = Scheduler::new(1);
        let handle: JobHandle<u32> = sched.submit(|_, _| 10);
        // First attempt settles on its own; requeue hands back its result
        // and the handle then waits on the second attempt.
        let first = sched.requeue(&handle, 0, |_, _| 20);
        assert!(matches!(first.outcome, JobOutcome::Completed(10)));
        assert_eq!(handle.wait().expect_completed(), 20);
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let sched: Scheduler<()> = Scheduler::new(2);
        let handles: Vec<_> = (0..16u32).map(|i| sched.submit(move |_, _| i * i)).collect();
        sched.shutdown();
        let out: Vec<u32> = handles.into_iter().map(|h| h.wait().expect_completed()).collect();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }
}
