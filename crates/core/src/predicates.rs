//! The three strengthening predicates of §V.
//!
//! * **P1** (anti-disassembly): branch displacements are split into a share
//!   `a` hidden in a periodic opaque array and a branch-specific remainder
//!   `δ - a`; this module generates the array and the per-ordinal shares.
//! * **P2** (anti-brute-force): opaque stack-pointer adjustments tied to the
//!   operands of equality branches; this module holds the per-block plan the
//!   crafter executes.
//! * **P3** (state-space widening): opaque recomputations / array updates
//!   driven by input-derived registers; this module holds the site-selection
//!   policy.

use crate::config::P1Config;
use raindrop_machine::{Cond, Reg};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A generated P1 instance for one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P1Instance {
    /// Configuration the instance was generated with.
    pub config: P1Config,
    /// Absolute address of the array in `.data` (filled in by the crafter
    /// after appending [`P1Instance::array_bytes`]).
    pub array_addr: u64,
    /// The hidden share `a_b` for each branch ordinal `b` in `0..n`.
    pub shares: Vec<u64>,
    /// The raw array cells.
    pub cells: Vec<u64>,
}

impl P1Instance {
    /// Generates a fresh instance: for every branch ordinal `b`, every
    /// `s`-strided cell `A[j*s + b]` holds a random value congruent to the
    /// ordinal's share modulo `m`; the remaining cells hold garbage.
    pub fn generate<R: Rng + ?Sized>(config: P1Config, rng: &mut R) -> P1Instance {
        assert!(config.s >= config.n, "period must cover every ordinal");
        assert!(config.m > config.n as u64, "modulus must exceed the ordinal count");
        let shares: Vec<u64> = (0..config.n).map(|_| rng.gen_range(0..config.m)).collect();
        let mut cells = vec![0u64; config.cells()];
        for (i, cell) in cells.iter_mut().enumerate() {
            let pos_in_period = i % config.s;
            if pos_in_period < config.n {
                // q ≡ a (mod m), with a random multiple of m added on top so
                // every cell looks different.
                let a = shares[pos_in_period];
                let k = rng.gen_range(1..(u32::MAX as u64 / config.m));
                *cell = a + k * config.m;
            } else {
                // Garbage cell.
                *cell = rng.gen::<u32>() as u64;
            }
        }
        P1Instance { config, array_addr: 0, shares, cells }
    }

    /// Serializes the array cells to bytes (little-endian 64-bit cells).
    pub fn array_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.cells.len() * 8);
        for c in &self.cells {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// The share for branch ordinal `b` (`b` is reduced modulo `n`, so any
    /// number of branches can reuse the `n` encoded ordinals).
    pub fn share_for(&self, branch_index: usize) -> (usize, u64) {
        let ordinal = branch_index % self.config.n;
        (ordinal, self.shares[ordinal])
    }

    /// Reference extraction: what the emitted chain computes at run time,
    /// `A[f(x)*s + ordinal] mod m`, for any period index `f(x)`.
    pub fn extract(&self, period: usize, ordinal: usize) -> u64 {
        let idx = (period % self.config.p) * self.config.s + ordinal;
        self.cells[idx] % self.config.m
    }
}

/// The P2 adjustment planned for the entry of one block (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum P2Adjust {
    /// The block is reached when `lhs == rhs` held: insert
    /// `rsp += x * (lhs - rhs)` (zero on the legitimate path).
    WhenEqual {
        /// Left operand register of the guarding comparison.
        lhs: Reg,
        /// Right operand.
        rhs: P2Operand,
        /// Multiplier `x` (a multiple of 8).
        x: u64,
    },
    /// The block is reached when `lhs != rhs` held: insert
    /// `rsp += x * (1 - notZero(lhs - rhs))`.
    WhenNotEqual {
        /// Left operand register of the guarding comparison.
        lhs: Reg,
        /// Right operand.
        rhs: P2Operand,
        /// Multiplier `x` (a multiple of 8).
        x: u64,
    },
}

/// Right-hand operand of the comparison guarding a P2-protected branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum P2Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl P2Adjust {
    /// Builds the pair of adjustments for an equality-style branch guarded
    /// by `cmp lhs, rhs; j<cond>`, returning `(taken_path, fallthrough_path)`
    /// adjustments. Only `je`/`jne` are eligible; other conditions return
    /// `None` (the paper presents P2 on equality checks).
    pub fn for_branch<R: Rng + ?Sized>(
        cond: Cond,
        lhs: Reg,
        rhs: P2Operand,
        rng: &mut R,
    ) -> Option<(P2Adjust, P2Adjust)> {
        let x = (rng.gen_range(1..8u64)) * 8;
        match cond {
            Cond::E => {
                Some((P2Adjust::WhenEqual { lhs, rhs, x }, P2Adjust::WhenNotEqual { lhs, rhs, x }))
            }
            Cond::Ne => {
                Some((P2Adjust::WhenNotEqual { lhs, rhs, x }, P2Adjust::WhenEqual { lhs, rhs, x }))
            }
            _ => None,
        }
    }

    /// Reference semantics of the adjustment: the RSP delta it produces for
    /// concrete operand values (zero on the legitimate path).
    pub fn delta(&self, lhs_value: u64, rhs_value: u64) -> u64 {
        let diff = lhs_value.wrapping_sub(rhs_value);
        match self {
            P2Adjust::WhenEqual { x, .. } => x.wrapping_mul(diff),
            P2Adjust::WhenNotEqual { x, .. } => {
                let not_zero = (!((!diff) & diff.wrapping_add(u64::MAX)) >> 63) & 1;
                x.wrapping_mul(1 - not_zero)
            }
        }
    }
}

/// P3 site-selection policy: which fraction of eligible program points get a
/// state-forking instance, decided per point with a deterministic RNG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P3Policy {
    /// Fraction `k` of eligible points to shield.
    pub fraction: f64,
}

impl P3Policy {
    /// Whether to instrument this point (eligibility must be checked by the
    /// caller: enough dead registers and an input-derived live register).
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.fraction > 0.0 && rng.gen_bool(self.fraction.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::P1Config;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p1_array_respects_the_periodic_invariant() {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = P1Config { n: 4, s: 6, p: 16, m: 11 };
        let inst = P1Instance::generate(cfg, &mut rng);
        assert_eq!(inst.cells.len(), 6 * 16);
        assert_eq!(inst.shares.len(), 4);
        for period in 0..cfg.p {
            for ordinal in 0..cfg.n {
                assert_eq!(
                    inst.extract(period, ordinal),
                    inst.shares[ordinal],
                    "period {period}, ordinal {ordinal}"
                );
            }
        }
        // Cells are diversified, not the bare share value.
        let distinct: std::collections::HashSet<u64> = inst.cells.iter().copied().collect();
        assert!(distinct.len() > cfg.n * 2);
    }

    #[test]
    fn p1_share_for_wraps_branch_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = P1Instance::generate(P1Config::default(), &mut rng);
        let (o0, a0) = inst.share_for(0);
        let (o4, a4) = inst.share_for(4);
        assert_eq!(o0, o4);
        assert_eq!(a0, a4);
        assert_eq!(inst.share_for(3).0, 3);
    }

    #[test]
    fn p1_array_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = P1Instance::generate(P1Config::default(), &mut rng);
        let bytes = inst.array_bytes();
        assert_eq!(bytes.len(), inst.cells.len() * 8);
        let first = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        assert_eq!(first, inst.cells[0]);
    }

    #[test]
    #[should_panic(expected = "period must cover")]
    fn p1_rejects_short_periods() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = P1Instance::generate(P1Config { n: 4, s: 2, p: 8, m: 7 }, &mut rng);
    }

    #[test]
    fn p2_is_neutral_on_the_legitimate_path_and_diverts_otherwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let (taken, fall) =
            P2Adjust::for_branch(Cond::E, Reg::Rax, P2Operand::Imm(5), &mut rng).unwrap();
        // Taken path of `je` is reached when equal: delta must be 0.
        assert_eq!(taken.delta(5, 5), 0);
        assert_ne!(taken.delta(6, 5), 0, "flipping the branch without fixing data diverts RSP");
        // Fallthrough of `je` is reached when different: delta must be 0.
        assert_eq!(fall.delta(6, 5), 0);
        assert_ne!(fall.delta(5, 5), 0);
        // Non-equality conditions are not eligible.
        assert!(P2Adjust::for_branch(Cond::L, Reg::Rax, P2Operand::Imm(1), &mut rng).is_none());
    }

    #[test]
    fn p2_not_zero_formulation_is_flag_independent_and_total() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, fall) =
            P2Adjust::for_branch(Cond::E, Reg::Rbx, P2Operand::Reg(Reg::Rcx), &mut rng).unwrap();
        for (l, r) in [(0u64, 0u64), (1, 0), (0, 1), (u64::MAX, 0), (7, 7), (u64::MAX, u64::MAX)] {
            let d = fall.delta(l, r);
            if l == r {
                assert_ne!(d, 0);
            } else {
                assert_eq!(d, 0);
            }
        }
    }

    #[test]
    fn p3_policy_fraction_is_respected_statistically() {
        let mut rng = StdRng::seed_from_u64(7);
        let policy = P3Policy { fraction: 0.25 };
        let hits = (0..4000).filter(|_| policy.select(&mut rng)).count();
        assert!((800..1200).contains(&hits), "got {hits} selections out of 4000");
        let never = P3Policy { fraction: 0.0 };
        assert!(!(0..100).any(|_| never.select(&mut rng)));
    }
}
