//! Rewriting errors.

use raindrop_analysis::CfgError;
use raindrop_machine::{AsmError, ImageError};
use std::fmt;

/// Errors produced by the ROP rewriter.
///
/// Several of these correspond to the failure classes reported for the
/// coreutils coverage experiment of §VII-C1 (register pressure, unsupported
/// stack idioms, CFG reconstruction failures); they are kept distinct so the
/// coverage experiment can bucket them the same way.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteError {
    /// CFG reconstruction failed.
    Cfg(CfgError),
    /// Image manipulation failed.
    Image(ImageError),
    /// Assembling the pivot stub failed.
    Asm(AsmError),
    /// The function body is too short to hold the pivot stub.
    FunctionTooShort {
        /// Size of the function in bytes.
        size: u64,
        /// Bytes required by the pivot stub.
        needed: u64,
    },
    /// Register pressure exceeded the spill capacity while lowering an
    /// instruction.
    RegisterPressure {
        /// Address of the instruction that could not be lowered.
        addr: u64,
    },
    /// The translation stage does not handle this instruction.
    UnsupportedInstruction {
        /// Address of the instruction.
        addr: u64,
        /// Rendered instruction text.
        inst: String,
    },
    /// Flags are live across a lowering that must pollute them and no
    /// preservation strategy applies.
    FlagsLiveAcrossLowering {
        /// Address of the instruction.
        addr: u64,
    },
    /// The function was already rewritten.
    AlreadyRewritten {
        /// Function name.
        name: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Cfg(e) => write!(f, "CFG reconstruction failed: {e}"),
            RewriteError::Image(e) => write!(f, "image error: {e}"),
            RewriteError::Asm(e) => write!(f, "assembly error: {e}"),
            RewriteError::FunctionTooShort { size, needed } => {
                write!(f, "function too short for pivot stub ({size} < {needed} bytes)")
            }
            RewriteError::RegisterPressure { addr } => {
                write!(f, "register pressure too high at {addr:#x}")
            }
            RewriteError::UnsupportedInstruction { addr, inst } => {
                write!(f, "unsupported instruction `{inst}` at {addr:#x}")
            }
            RewriteError::FlagsLiveAcrossLowering { addr } => {
                write!(f, "condition flags live across an unpreservable lowering at {addr:#x}")
            }
            RewriteError::AlreadyRewritten { name } => {
                write!(f, "function `{name}` was already rewritten")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<CfgError> for RewriteError {
    fn from(e: CfgError) -> Self {
        RewriteError::Cfg(e)
    }
}

impl From<ImageError> for RewriteError {
    fn from(e: ImageError) -> Self {
        RewriteError::Image(e)
    }
}

impl From<AsmError> for RewriteError {
    fn from(e: AsmError) -> Self {
        RewriteError::Asm(e)
    }
}

/// Coarse failure classes used by the deployability experiment (§VII-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FailureClass {
    /// Register allocation ran out of spill capacity.
    RegisterPressure,
    /// An instruction shape the translator does not handle.
    UnsupportedInstruction,
    /// CFG reconstruction failed.
    CfgReconstruction,
    /// Function shorter than the pivot stub.
    TooShort,
    /// Any other failure.
    Other,
}

impl RewriteError {
    /// Buckets the error into the coverage experiment's failure classes.
    pub fn failure_class(&self) -> FailureClass {
        match self {
            RewriteError::RegisterPressure { .. } => FailureClass::RegisterPressure,
            RewriteError::UnsupportedInstruction { .. } => FailureClass::UnsupportedInstruction,
            RewriteError::Cfg(_) => FailureClass::CfgReconstruction,
            RewriteError::FunctionTooShort { .. } => FailureClass::TooShort,
            _ => FailureClass::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_classes_match_error_kinds() {
        assert_eq!(
            RewriteError::RegisterPressure { addr: 0 }.failure_class(),
            FailureClass::RegisterPressure
        );
        assert_eq!(
            RewriteError::FunctionTooShort { size: 4, needed: 60 }.failure_class(),
            FailureClass::TooShort
        );
        assert_eq!(
            RewriteError::UnsupportedInstruction { addr: 0, inst: "x".into() }.failure_class(),
            FailureClass::UnsupportedInstruction
        );
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = RewriteError::FunctionTooShort { size: 10, needed: 60 };
        assert!(format!("{e}").contains("pivot stub"));
        let e = RewriteError::RegisterPressure { addr: 0x1234 };
        assert!(format!("{e}").contains("0x1234"));
    }
}
