//! Configuration of the ROP rewriter.
//!
//! The knobs mirror Table I of the paper: `ROPk` means "ROP obfuscation with
//! P3 inserted at a fraction *k* of program points and P1 instantiated with
//! `n = 4, s = n, p = 32`". P2 and gadget confusion have no effect on
//! semantics-driven attackers (DSE), so the paper disables them for the
//! resource-measurement experiments; both are independent switches here.

use raindrop_gadgets::CatalogConfig;
use serde::{Deserialize, Serialize};

/// Parameters of the P1 opaque-array predicate (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P1Config {
    /// Number of branch ordinals encoded in the array (`n`).
    pub n: usize,
    /// Period length in cells (`s >= n`); cells beyond `n` hold garbage.
    pub s: usize,
    /// Number of periods (`p`).
    pub p: usize,
    /// Modulus used by the congruence invariant (`m > n`).
    pub m: u64,
}

impl Default for P1Config {
    fn default() -> Self {
        // The setting used throughout §VII: n = 4, s = n, p = 32.
        P1Config { n: 4, s: 4, p: 32, m: 7 }
    }
}

impl P1Config {
    /// Total number of 64-bit cells in the opaque array.
    pub fn cells(&self) -> usize {
        self.s * self.p
    }
}

/// Which P3 variant to instantiate (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum P3Variant {
    /// The FOR-style opaque recomputation of an input-derived register.
    ForLoop,
    /// Opaque, invariant-preserving updates of the P1 array (implicit flows).
    ArrayUpdate,
    /// Alternate between the two variants from site to site.
    Mixed,
}

/// Full configuration of the ROP rewriter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RopConfig {
    /// Fraction `k` of eligible program points that receive a P3 instance.
    pub p3_fraction: f64,
    /// P3 variant selection.
    pub p3_variant: P3Variant,
    /// P1 opaque-array branch encoding (`None` falls back to the plain
    /// `pop offset; cmov; add rsp` encoding of §IV-B2).
    pub p1: Option<P1Config>,
    /// Enable P2 opaque stack-pointer adjustments on equality branches.
    pub p2: bool,
    /// Enable gadget confusion (immediate disguising + unaligned RSP
    /// updates, §V-D).
    pub gadget_confusion: bool,
    /// Gadget catalog configuration (diversity, scanning, synthesis).
    #[serde(skip)]
    pub catalog: CatalogConfig,
    /// Seed for every obfuscation-time random choice; the same seed and
    /// input image always produce the same output image.
    pub seed: u64,
    /// Maximum ROP-call nesting depth supported by the stack-switching
    /// array.
    pub max_rop_depth: usize,
    /// Number of 8-byte spill slots available to the register allocator.
    pub spill_slots: usize,
}

impl Default for RopConfig {
    fn default() -> Self {
        RopConfig {
            p3_fraction: 0.0,
            p3_variant: P3Variant::Mixed,
            p1: Some(P1Config::default()),
            p2: true,
            gadget_confusion: true,
            catalog: CatalogConfig::default(),
            seed: 0xDA1D_0B5C_u64,
            max_rop_depth: 1024,
            spill_slots: 1,
        }
    }
}

impl RopConfig {
    /// The `ROPk` configuration of Table I: P1 with the paper's parameters,
    /// P3 at fraction `k`, P2 and gadget confusion disabled (they do not
    /// affect the semantics-driven attacks those experiments measure).
    pub fn ropk(k: f64) -> RopConfig {
        RopConfig {
            p3_fraction: k,
            p3_variant: P3Variant::ForLoop,
            p1: Some(P1Config::default()),
            p2: false,
            gadget_confusion: false,
            ..RopConfig::default()
        }
    }

    /// A plain ROP encoding with every strengthening predicate disabled;
    /// the baseline that §V argues is *not* sufficient on its own.
    pub fn plain() -> RopConfig {
        RopConfig {
            p3_fraction: 0.0,
            p1: None,
            p2: false,
            gadget_confusion: false,
            ..RopConfig::default()
        }
    }

    /// The full-strength configuration: P1 + P2 + P3 everywhere + gadget
    /// confusion.
    pub fn full() -> RopConfig {
        RopConfig {
            p3_fraction: 1.0,
            p3_variant: P3Variant::Mixed,
            p1: Some(P1Config::default()),
            p2: true,
            gadget_confusion: true,
            ..RopConfig::default()
        }
    }

    /// Returns a copy with a different seed (used to diversify per-function
    /// obfuscation choices deterministically).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_p1_matches_paper_setting() {
        let p1 = P1Config::default();
        assert_eq!(p1.n, 4);
        assert_eq!(p1.s, p1.n);
        assert_eq!(p1.p, 32);
        assert_eq!(p1.cells(), 128, "128 statically populated cells, §VII-A1");
        assert!(p1.m > p1.n as u64);
    }

    #[test]
    fn ropk_configuration_shape() {
        let c = RopConfig::ropk(0.25);
        assert_eq!(c.p3_fraction, 0.25);
        assert!(c.p1.is_some());
        assert!(!c.p2);
        assert!(!c.gadget_confusion);
        let plain = RopConfig::plain();
        assert!(plain.p1.is_none());
        let full = RopConfig::full();
        assert_eq!(full.p3_fraction, 1.0);
        assert!(full.p2 && full.gadget_confusion);
    }

    #[test]
    fn seeding_is_explicit() {
        let a = RopConfig::default().with_seed(1);
        let b = RopConfig::default().with_seed(2);
        assert_ne!(a.seed, b.seed);
    }
}
