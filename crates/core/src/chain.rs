//! Chain intermediate representation and layout resolution.
//!
//! A ROP chain is a sequence of 8-byte slots (gadget addresses interleaved
//! with immediate data operands, §II-B). During crafting the chain is kept
//! symbolic: branch displacements reference *labels* (block starts or item
//! positions) that only become concrete RSP-relative displacements once the
//! layout is final — "similarly to what a compiler assembler does with
//! labels" (§IV-B2). This module holds that symbolic form and resolves it.

use raindrop_analysis::BlockId;
use raindrop_gadgets::GadgetOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a symbolic branch displacement points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaTarget {
    /// The start of a translated basic block.
    Block(BlockId),
    /// A specific chain item (used by the intra-chain loops P3 introduces).
    Item(usize),
}

/// One element of the symbolic chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChainItem {
    /// The address of a gadget (one 8-byte slot). `junk_pops` records how
    /// many extra chain slots the gadget consumes through junk `pop`s; the
    /// crafter emits matching [`ChainItem::Imm`] filler right after.
    Gadget {
        /// Absolute address of the gadget in `.text`.
        addr: u64,
        /// Number of junk `pop`s in the gadget.
        junk_pops: usize,
        /// The operation the gadget was requested for (debugging/statistics).
        op: GadgetOp,
    },
    /// An immediate 8-byte data operand.
    Imm(u64),
    /// A branch displacement slot: resolves to
    /// `offset(target) - (offset(anchor) + 8 + 8*junk_pops(anchor)) + bias`.
    ///
    /// `anchor` is the index of the `add rsp, reg` gadget item that performs
    /// the displacement, and `bias` is the negated P1 array share `-a` (zero
    /// when P1 is disabled).
    BranchDelta {
        /// Where the branch goes.
        target: DeltaTarget,
        /// Item index of the RSP-adding gadget.
        anchor: usize,
        /// Constant added to the resolved displacement.
        bias: i64,
    },
    /// Marks the start of a translated basic block (zero bytes).
    BlockStart(BlockId),
    /// Raw padding bytes (used by gadget confusion's unaligned RSP skips).
    Pad(Vec<u8>),
}

impl ChainItem {
    /// Size of the item in the laid-out chain.
    pub fn byte_len(&self) -> usize {
        match self {
            ChainItem::Gadget { .. } | ChainItem::Imm(_) | ChainItem::BranchDelta { .. } => 8,
            ChainItem::BlockStart(_) => 0,
            ChainItem::Pad(bytes) => bytes.len(),
        }
    }
}

/// A deferred patch of the original `.text`: switch-table dispatch stores an
/// RSP displacement at the address of each original case block (Appendix A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchPatch {
    /// Address in `.text` where the 8-byte displacement is written.
    pub text_addr: u64,
    /// The case block the displacement leads to.
    pub target: DeltaTarget,
    /// Item index of the RSP-adding gadget of the switch dispatch.
    pub anchor: usize,
}

/// Errors raised while resolving a chain layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A displacement references a block that was never emitted.
    UnknownBlock(BlockId),
    /// A displacement references an item index that does not exist.
    UnknownItem(usize),
    /// An anchor index does not reference a gadget item.
    BadAnchor(usize),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownBlock(b) => write!(f, "chain references unemitted block {b}"),
            ChainError::UnknownItem(i) => write!(f, "chain references unknown item {i}"),
            ChainError::BadAnchor(i) => write!(f, "item {i} used as anchor is not a gadget"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A fully resolved chain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResolvedChain {
    /// The raw bytes to place in `.data`.
    pub bytes: Vec<u8>,
    /// Resolved switch patches: `(text address, displacement value)`.
    pub switch_values: Vec<(u64, i64)>,
}

/// Reusable scratch buffers for [`Chain::resolve_into`].
///
/// Resolving a chain needs a per-item offset table and a block-start index;
/// allocating them per function is the churn the materialization hot path
/// used to pay. A `ChainScratch` (usually owned by a
/// [`MaterializeCtx`](crate::materialize::MaterializeCtx)) keeps the buffers
/// alive across functions — both are capacity-retaining `Vec`s, so
/// steady-state resolution allocates nothing.
#[derive(Debug, Default)]
pub struct ChainScratch {
    offsets: Vec<usize>,
    /// First chain-item index of every emitted block, sorted by block for
    /// binary search (a flat vec rather than a tree map: a `Vec` keeps its
    /// capacity across `clear()`, and in-place sort/dedup allocate nothing).
    block_starts: Vec<(BlockId, usize)>,
}

/// The symbolic chain built by the crafter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Chain {
    /// Chain items in execution-layout order.
    pub items: Vec<ChainItem>,
    /// Deferred switch-table text patches.
    pub switch_patches: Vec<SwitchPatch>,
}

impl Chain {
    /// Creates an empty chain.
    pub fn new() -> Chain {
        Chain::default()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the chain has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of 8-byte gadget-address slots (column A contribution of
    /// Table III counts gadget uses; this is that per-chain count).
    pub fn gadget_slots(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, ChainItem::Gadget { .. })).count()
    }

    /// Total size of the laid-out chain in bytes.
    pub fn byte_len(&self) -> usize {
        self.items.iter().map(ChainItem::byte_len).sum()
    }

    /// Byte offset of every item in the laid-out chain.
    pub fn offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.items.len());
        let mut off = 0usize;
        for item in &self.items {
            out.push(off);
            off += item.byte_len();
        }
        out
    }

    fn target_offset(
        &self,
        offsets: &[usize],
        block_starts: &[(BlockId, usize)],
        target: DeltaTarget,
    ) -> Result<usize, ChainError> {
        match target {
            DeltaTarget::Block(b) => {
                let idx = block_starts
                    .binary_search_by_key(&b, |(block, _)| *block)
                    .map(|pos| block_starts[pos].1)
                    .map_err(|_| ChainError::UnknownBlock(b))?;
                Ok(offsets[idx])
            }
            DeltaTarget::Item(i) => offsets.get(i).copied().ok_or(ChainError::UnknownItem(i)),
        }
    }

    fn anchor_landing(&self, offsets: &[usize], anchor: usize) -> Result<usize, ChainError> {
        match self.items.get(anchor) {
            Some(ChainItem::Gadget { junk_pops, .. }) => Ok(offsets[anchor] + 8 + 8 * junk_pops),
            _ => Err(ChainError::BadAnchor(anchor)),
        }
    }

    /// Resolves the chain into raw bytes and switch-patch values.
    ///
    /// Allocates fresh output buffers; the materialization hot path uses
    /// [`Chain::resolve_into`] with a reused [`ChainScratch`] instead.
    ///
    /// # Errors
    ///
    /// Fails when a displacement references a missing block/item or an
    /// anchor that is not a gadget item.
    pub fn resolve(&self) -> Result<ResolvedChain, ChainError> {
        let mut scratch = ChainScratch::default();
        let mut out = ResolvedChain::default();
        self.resolve_into(&mut scratch, &mut out)?;
        Ok(out)
    }

    /// Resolves the chain into `out`, reusing the buffers of both `scratch`
    /// and `out` (they are cleared first). Produces exactly the bytes and
    /// switch values [`Chain::resolve`] returns, without the per-call
    /// allocations.
    ///
    /// # Errors
    ///
    /// Same failure cases as [`Chain::resolve`]; on error `out` holds a
    /// partial layout and must not be used.
    pub fn resolve_into(
        &self,
        scratch: &mut ChainScratch,
        out: &mut ResolvedChain,
    ) -> Result<(), ChainError> {
        let ChainScratch { offsets, block_starts } = scratch;
        offsets.clear();
        block_starts.clear();
        let mut off = 0usize;
        for (i, item) in self.items.iter().enumerate() {
            offsets.push(off);
            off += item.byte_len();
            if let ChainItem::BlockStart(b) = item {
                block_starts.push((*b, i));
            }
        }
        // Sort for binary search; dedup keeps the first (lowest item index)
        // occurrence of each block, matching the map-entry semantics the
        // layout always had.
        block_starts.sort_unstable();
        block_starts.dedup_by_key(|(b, _)| *b);

        out.bytes.clear();
        out.bytes.reserve(off);
        for item in &self.items {
            match item {
                ChainItem::Gadget { addr, .. } => out.bytes.extend_from_slice(&addr.to_le_bytes()),
                ChainItem::Imm(v) => out.bytes.extend_from_slice(&v.to_le_bytes()),
                ChainItem::BranchDelta { target, anchor, bias } => {
                    let t = self.target_offset(offsets, block_starts, *target)?;
                    let landing = self.anchor_landing(offsets, *anchor)?;
                    let delta = t as i64 - landing as i64 + bias;
                    out.bytes.extend_from_slice(&delta.to_le_bytes());
                }
                ChainItem::BlockStart(_) => {}
                ChainItem::Pad(p) => out.bytes.extend_from_slice(p),
            }
        }

        out.switch_values.clear();
        out.switch_values.reserve(self.switch_patches.len());
        for patch in &self.switch_patches {
            let t = self.target_offset(offsets, block_starts, patch.target)?;
            let landing = self.anchor_landing(offsets, patch.anchor)?;
            out.switch_values.push((patch.text_addr, t as i64 - landing as i64));
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gadget(addr: u64, junk: usize) -> ChainItem {
        ChainItem::Gadget { addr, junk_pops: junk, op: GadgetOp::Unclassified }
    }

    #[test]
    fn layout_offsets_account_for_zero_width_markers_and_padding() {
        let chain = Chain {
            items: vec![
                ChainItem::BlockStart(BlockId(0)),
                gadget(0x1000, 0),
                ChainItem::Imm(42),
                ChainItem::Pad(vec![0xAA; 3]),
                gadget(0x2000, 1),
                ChainItem::Imm(0),
            ],
            switch_patches: vec![],
        };
        assert_eq!(chain.offsets(), vec![0, 0, 8, 16, 19, 27]);
        assert_eq!(chain.byte_len(), 35);
        assert_eq!(chain.gadget_slots(), 2);
    }

    #[test]
    fn forward_branch_delta_resolves() {
        // Layout: [pop g][delta][addrsp g][ ...skipped imm... ][BlockStart target][g]
        let mut chain = Chain::new();
        chain.items.push(ChainItem::BlockStart(BlockId(0)));
        chain.items.push(gadget(0x1000, 0)); // pop reg
        chain.items.push(ChainItem::BranchDelta {
            target: DeltaTarget::Block(BlockId(1)),
            anchor: 3,
            bias: 0,
        });
        chain.items.push(gadget(0x1100, 0)); // add rsp, reg (anchor)
        chain.items.push(ChainItem::Imm(0xdead)); // skipped slot
        chain.items.push(ChainItem::BlockStart(BlockId(1)));
        chain.items.push(gadget(0x1200, 0));
        let resolved = chain.resolve().unwrap();
        // The delta slot is at byte offset 8..16; its value should be
        // offset(block1)=32 minus landing (anchor offset 16 + 8) = 8.
        let delta = i64::from_le_bytes(resolved.bytes[8..16].try_into().unwrap());
        assert_eq!(delta, 8);
    }

    #[test]
    fn junk_pops_shift_the_anchor_landing() {
        let mut chain = Chain::new();
        chain.items.push(gadget(0x1000, 0)); // pop reg
        chain.items.push(ChainItem::BranchDelta {
            target: DeltaTarget::Item(5),
            anchor: 2,
            bias: 0,
        });
        chain.items.push(gadget(0x1100, 1)); // add rsp with one junk pop
        chain.items.push(ChainItem::Imm(0)); // junk filler
        chain.items.push(ChainItem::Imm(0xbeef)); // skipped
        chain.items.push(gadget(0x1200, 0)); // target item
        let resolved = chain.resolve().unwrap();
        let delta = i64::from_le_bytes(resolved.bytes[8..16].try_into().unwrap());
        // target offset = 40, landing = 16 + 8 + 8 = 32 → delta 8.
        assert_eq!(delta, 8);
    }

    #[test]
    fn negative_bias_is_applied() {
        let mut chain = Chain::new();
        chain.items.push(gadget(0x1000, 0));
        chain.items.push(ChainItem::BranchDelta {
            target: DeltaTarget::Item(3),
            anchor: 2,
            bias: -5,
        });
        chain.items.push(gadget(0x1100, 0));
        chain.items.push(gadget(0x1200, 0));
        let resolved = chain.resolve().unwrap();
        let delta = i64::from_le_bytes(resolved.bytes[8..16].try_into().unwrap());
        assert_eq!(delta, 0 - 5, "target lands right after the anchor, minus the bias");
    }

    #[test]
    fn unknown_block_is_an_error() {
        let mut chain = Chain::new();
        chain.items.push(gadget(0x1000, 0));
        chain.items.push(ChainItem::BranchDelta {
            target: DeltaTarget::Block(BlockId(9)),
            anchor: 0,
            bias: 0,
        });
        assert_eq!(chain.resolve(), Err(ChainError::UnknownBlock(BlockId(9))));
    }

    #[test]
    fn bad_anchor_is_an_error() {
        let mut chain = Chain::new();
        chain.items.push(ChainItem::Imm(1));
        chain.items.push(ChainItem::BranchDelta {
            target: DeltaTarget::Item(0),
            anchor: 0,
            bias: 0,
        });
        assert_eq!(chain.resolve(), Err(ChainError::BadAnchor(0)));
    }

    #[test]
    fn resolve_into_reuses_buffers_and_matches_resolve() {
        let mut scratch = ChainScratch::default();
        let mut out = ResolvedChain::default();
        // Two different chains through the same scratch: the second result
        // must not be polluted by the first.
        let chains = [
            Chain {
                items: vec![
                    ChainItem::BlockStart(BlockId(0)),
                    gadget(0x1000, 0),
                    ChainItem::BranchDelta {
                        target: DeltaTarget::Block(BlockId(0)),
                        anchor: 1,
                        bias: -3,
                    },
                    ChainItem::Pad(vec![0x55; 5]),
                ],
                switch_patches: vec![SwitchPatch {
                    text_addr: 0x4000,
                    target: DeltaTarget::Block(BlockId(0)),
                    anchor: 1,
                }],
            },
            Chain { items: vec![gadget(0x2000, 1), ChainItem::Imm(7)], switch_patches: vec![] },
        ];
        for chain in &chains {
            chain.resolve_into(&mut scratch, &mut out).unwrap();
            assert_eq!(out, chain.resolve().unwrap());
        }
    }

    #[test]
    fn switch_patches_resolve_to_displacements() {
        let mut chain = Chain::new();
        chain.items.push(gadget(0x1000, 0)); // anchor (add rsp)
        chain.items.push(ChainItem::Imm(1)); // slot right after landing
        chain.items.push(ChainItem::BlockStart(BlockId(2)));
        chain.items.push(gadget(0x1200, 0));
        chain.switch_patches.push(SwitchPatch {
            text_addr: 0x4000,
            target: DeltaTarget::Block(BlockId(2)),
            anchor: 0,
        });
        let resolved = chain.resolve().unwrap();
        assert_eq!(resolved.switch_values, vec![(0x4000, 8)]);
    }
}
