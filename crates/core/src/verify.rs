//! Differential verification of rewritten functions.
//!
//! The paper validates functional correctness by running the coreutils test
//! suite over the obfuscated binaries (§VII-C1). The equivalent here is a
//! differential tester: run the original and the rewritten image on the same
//! inputs in two emulators and compare return values (and, optionally, the
//! contents of a designated memory region such as an output buffer).

use raindrop_machine::{EmuError, Emulator, Image};
use serde::{Deserialize, Serialize};

/// One differential test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCase {
    /// Arguments passed in the ABI registers.
    pub args: Vec<u64>,
    /// Bytes written to guest memory before the call: `(address, bytes)`.
    pub memory: Vec<(u64, Vec<u8>)>,
    /// Memory region compared after the call: `(address, length)`.
    pub compare_region: Option<(u64, usize)>,
}

impl TestCase {
    /// A register-only test case.
    pub fn args(args: &[u64]) -> TestCase {
        TestCase { args: args.to_vec(), memory: Vec::new(), compare_region: None }
    }
}

/// Outcome of a differential run of one test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Return values (and compared regions) matched.
    Match {
        /// The common return value.
        value: u64,
    },
    /// Return values differed.
    ReturnMismatch {
        /// Original function's return value.
        original: u64,
        /// Rewritten function's return value.
        rewritten: u64,
    },
    /// Return values matched but the compared memory region differed.
    MemoryMismatch {
        /// First differing offset within the compared region.
        offset: usize,
    },
    /// One of the two executions faulted.
    ExecutionError {
        /// Rendered emulator error.
        error: String,
        /// Whether the error occurred in the rewritten (true) or original
        /// (false) image.
        in_rewritten: bool,
    },
}

impl Verdict {
    /// Whether the verdict counts as equivalent behaviour.
    pub fn is_match(&self) -> bool {
        matches!(self, Verdict::Match { .. })
    }
}

/// Instruction-budget multiplier granted to the rewritten run, relative to
/// the instructions the original run actually executed.
///
/// Full-strength rewriting costs a few gadgets per program point plus the
/// P3 opaque loops (≤ 257 iterations of ~8 gadgets each per site), which
/// stays orders of magnitude below this bound. A rewrite that *diverges* —
/// e.g. a corrupted chain looping on itself — hits the budget quickly and
/// is reported as an [`Verdict::ExecutionError`]. The derived budget is
/// additionally clamped to the emulator's default
/// ([`raindrop_machine::DEFAULT_BUDGET`]), so it is always a reduction,
/// never an extension.
pub const VERIFY_BUDGET_MULTIPLIER: u64 = 50_000;

/// Minimum instruction budget for the rewritten run, so trivially small
/// originals still leave room for runtime installation and chain dispatch.
pub const VERIFY_BUDGET_FLOOR: u64 = 2_000_000;

/// A warm emulator for one image: the image is loaded (and, as cases run,
/// its text predecoded) once; every case starts from a pristine snapshot
/// restored in place.
struct WarmRunner {
    emu: Emulator,
    pristine: raindrop_machine::Snapshot,
    func_addr: u64,
}

impl WarmRunner {
    fn new(image: &Image, func: &str) -> WarmRunner {
        let emu = Emulator::new(image);
        let pristine = emu.snapshot();
        let func_addr = image.function(func).expect("function exists").addr;
        WarmRunner { emu, pristine, func_addr }
    }

    /// Runs one case from the pristine state; returns the return value, the
    /// compared region's bytes and the instructions executed.
    fn run(
        &mut self,
        case: &TestCase,
        budget: Option<u64>,
    ) -> Result<(u64, Vec<u8>, u64), EmuError> {
        self.emu.restore(&self.pristine);
        self.emu.set_budget(budget.unwrap_or(raindrop_machine::DEFAULT_BUDGET));
        for (addr, bytes) in &case.memory {
            self.emu.mem.write_bytes(*addr, bytes);
        }
        let ret = self.emu.call(self.func_addr, &case.args)?;
        let region = match case.compare_region {
            Some((addr, len)) => {
                let mut buf = vec![0u8; len];
                self.emu.mem.read_bytes(addr, &mut buf);
                buf
            }
            None => Vec::new(),
        };
        Ok((ret, region, self.emu.stats().instructions))
    }
}

fn check_one(orig: &mut WarmRunner, new: &mut WarmRunner, case: &TestCase) -> Verdict {
    let orig = match orig.run(case, None) {
        Ok(v) => v,
        Err(e) => return Verdict::ExecutionError { error: format!("{e}"), in_rewritten: false },
    };
    let budget = orig
        .2
        .saturating_mul(VERIFY_BUDGET_MULTIPLIER)
        .clamp(VERIFY_BUDGET_FLOOR, raindrop_machine::DEFAULT_BUDGET);
    let new = match new.run(case, Some(budget)) {
        Ok(v) => v,
        Err(e) => return Verdict::ExecutionError { error: format!("{e}"), in_rewritten: true },
    };
    if orig.0 != new.0 {
        return Verdict::ReturnMismatch { original: orig.0, rewritten: new.0 };
    }
    if let Some(offset) = orig.1.iter().zip(&new.1).position(|(a, b)| a != b) {
        return Verdict::MemoryMismatch { offset };
    }
    Verdict::Match { value: orig.0 }
}

/// Runs one differential test case against the original and rewritten
/// images.
///
/// The rewritten run's instruction budget is derived from the original
/// run's measured cost ([`VERIFY_BUDGET_MULTIPLIER`] ×, with a
/// [`VERIFY_BUDGET_FLOOR`]), so a diverging rewrite fails fast with an
/// [`Verdict::ExecutionError`] rather than exhausting the emulator default.
/// For more than one case, [`verify_batch`] amortizes image loading and
/// instruction predecoding across the whole batch.
pub fn check_case(original: &Image, rewritten: &Image, func: &str, case: &TestCase) -> Verdict {
    verify_batch(original, rewritten, func, std::slice::from_ref(case)).remove(0)
}

/// Runs a batch of differential test cases against one original/rewritten
/// image pair, amortizing per-image setup across the batch: each image is
/// loaded into a warm emulator **once**, every case is executed from an
/// in-place snapshot restore, and the predecoded instruction cache filled by
/// earlier cases stays valid for later ones (text pages revert bit-identical
/// on restore, so their generations — and the decoded runs tagged with them
/// — survive).
///
/// Verdicts are returned in case order and are identical to running
/// [`check_case`] per case.
pub fn verify_batch(
    original: &Image,
    rewritten: &Image,
    func: &str,
    cases: &[TestCase],
) -> Vec<Verdict> {
    let mut orig = WarmRunner::new(original, func);
    let mut new = WarmRunner::new(rewritten, func);
    cases.iter().map(|case| check_one(&mut orig, &mut new, case)).collect()
}

/// Convenience: `true` iff every case matches.
pub fn equivalent(original: &Image, rewritten: &Image, func: &str, cases: &[TestCase]) -> bool {
    verify_batch(original, rewritten, func, cases).iter().all(Verdict::is_match)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RopConfig;
    use crate::rewriter::Rewriter;
    use raindrop_machine::{AluOp, Assembler, Cond, ImageBuilder, Inst, Mem, Reg};

    fn abs_diff_image() -> Image {
        let mut a = Assembler::new();
        let swap = a.new_label();
        let done = a.new_label();
        a.inst(Inst::Push(Reg::Rbp));
        a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
        a.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16));
        a.inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi));
        a.inst(Inst::Load(Reg::Rdi, Mem::base_disp(Reg::Rbp, -8)));
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
        a.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi));
        a.jcc(Cond::B, swap);
        a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rsi));
        a.jmp(done);
        a.bind(swap);
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rsi));
        a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rdi));
        a.bind(done);
        a.inst(Inst::Leave);
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("absdiff", a);
        b.build().unwrap()
    }

    #[test]
    fn rewritten_function_is_equivalent_on_register_cases() {
        let original = abs_diff_image();
        let mut obf = original.clone();
        let mut rw = Rewriter::new(RopConfig::full());
        rw.rewrite_function(&mut obf, "absdiff").unwrap();
        let cases: Vec<TestCase> = [(9u64, 4u64), (4, 9), (0, 0), (u64::MAX, 1)]
            .iter()
            .map(|(a, b)| TestCase::args(&[*a, *b]))
            .collect();
        assert!(equivalent(&original, &obf, "absdiff", &cases));
    }

    #[test]
    fn mismatches_are_detected() {
        let original = abs_diff_image();
        // Compare the function against a *different* image where the
        // function body computes something else entirely.
        let mut other_builder = ImageBuilder::new();
        let mut a = Assembler::new();
        a.inst(Inst::MovRI(Reg::Rax, 1234));
        a.inst(Inst::Ret);
        other_builder.add_function("absdiff", a);
        let other = other_builder.build().unwrap();
        let verdicts = verify_batch(&original, &other, "absdiff", &[TestCase::args(&[9, 4])]);
        assert!(matches!(verdicts[0], Verdict::ReturnMismatch { original: 5, rewritten: 1234 }));
        assert!(!verdicts[0].is_match());
    }

    #[test]
    fn memory_regions_are_compared() {
        // A function writing its argument to a fixed global; compare that
        // global after the call.
        let mut b = ImageBuilder::new();
        let global = b.add_bss("out", 8);
        let mut a = Assembler::new();
        a.inst(Inst::Store(Mem::abs(global as i32), Reg::Rdi));
        a.inst(Inst::MovRI(Reg::Rax, 0));
        a.inst(Inst::Ret);
        b.add_function("store", a);
        let original = b.build().unwrap();
        let case = TestCase { args: vec![0xAB], memory: vec![], compare_region: Some((global, 8)) };
        let verdict = check_case(&original, &original, "store", &case);
        assert!(verdict.is_match());
    }

    #[test]
    fn execution_errors_are_reported() {
        let original = abs_diff_image();
        let mut broken = original.clone();
        // Corrupt the function with undecodable bytes.
        let addr = broken.function("absdiff").unwrap().addr;
        broken.patch_text(addr, &[0xFF; 4]).unwrap();
        let verdict = check_case(&original, &broken, "absdiff", &TestCase::args(&[1, 2]));
        assert!(matches!(verdict, Verdict::ExecutionError { in_rewritten: true, .. }));
    }
}
