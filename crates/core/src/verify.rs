//! Differential verification of rewritten functions.
//!
//! The paper validates functional correctness by running the coreutils test
//! suite over the obfuscated binaries (§VII-C1). The equivalent here is a
//! differential tester: run the original and the rewritten image on the same
//! inputs in two emulators and compare return values (and, optionally, the
//! contents of a designated memory region such as an output buffer).

use crate::chain::ChainItem;
use crate::rewriter::{ImageReport, RewriteReport};
use raindrop_analysis::absint::{summarize, GadgetExit, GadgetSummary};
use raindrop_gadgets::GadgetOp;
use raindrop_machine::{EmuError, Emulator, Image, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One differential test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCase {
    /// Arguments passed in the ABI registers.
    pub args: Vec<u64>,
    /// Bytes written to guest memory before the call: `(address, bytes)`.
    pub memory: Vec<(u64, Vec<u8>)>,
    /// Memory region compared after the call: `(address, length)`.
    pub compare_region: Option<(u64, usize)>,
}

impl TestCase {
    /// A register-only test case.
    pub fn args(args: &[u64]) -> TestCase {
        TestCase { args: args.to_vec(), memory: Vec::new(), compare_region: None }
    }
}

/// Outcome of a differential run of one test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Return values (and compared regions) matched.
    Match {
        /// The common return value.
        value: u64,
    },
    /// Return values differed.
    ReturnMismatch {
        /// Original function's return value.
        original: u64,
        /// Rewritten function's return value.
        rewritten: u64,
    },
    /// Return values matched but the compared memory region differed.
    MemoryMismatch {
        /// First differing offset within the compared region.
        offset: usize,
    },
    /// One of the two executions faulted.
    ExecutionError {
        /// Rendered emulator error.
        error: String,
        /// Whether the error occurred in the rewritten (true) or original
        /// (false) image.
        in_rewritten: bool,
    },
}

impl Verdict {
    /// Whether the verdict counts as equivalent behaviour.
    pub fn is_match(&self) -> bool {
        matches!(self, Verdict::Match { .. })
    }
}

/// Instruction-budget multiplier granted to the rewritten run, relative to
/// the instructions the original run actually executed.
///
/// Full-strength rewriting costs a few gadgets per program point plus the
/// P3 opaque loops (≤ 257 iterations of ~8 gadgets each per site), which
/// stays orders of magnitude below this bound. A rewrite that *diverges* —
/// e.g. a corrupted chain looping on itself — hits the budget quickly and
/// is reported as an [`Verdict::ExecutionError`]. The derived budget is
/// additionally clamped to the emulator's default
/// ([`raindrop_machine::DEFAULT_BUDGET`]), so it is always a reduction,
/// never an extension.
pub const VERIFY_BUDGET_MULTIPLIER: u64 = 50_000;

/// Minimum instruction budget for the rewritten run, so trivially small
/// originals still leave room for runtime installation and chain dispatch.
pub const VERIFY_BUDGET_FLOOR: u64 = 2_000_000;

/// A warm emulator for one image: the image is loaded (and, as cases run,
/// its text predecoded) once; every case starts from a pristine snapshot
/// restored in place.
struct WarmRunner {
    emu: Emulator,
    pristine: raindrop_machine::Snapshot,
    func_addr: u64,
}

impl WarmRunner {
    fn new(image: &Image, func: &str) -> WarmRunner {
        let emu = Emulator::new(image);
        let pristine = emu.snapshot();
        let func_addr = image.function(func).expect("function exists").addr;
        WarmRunner { emu, pristine, func_addr }
    }

    /// Runs one case from the pristine state; returns the return value, the
    /// compared region's bytes and the instructions executed.
    fn run(
        &mut self,
        case: &TestCase,
        budget: Option<u64>,
    ) -> Result<(u64, Vec<u8>, u64), EmuError> {
        self.emu.restore(&self.pristine);
        self.emu.set_budget(budget.unwrap_or(raindrop_machine::DEFAULT_BUDGET));
        for (addr, bytes) in &case.memory {
            self.emu.mem.write_bytes(*addr, bytes);
        }
        let ret = self.emu.call(self.func_addr, &case.args)?;
        let region = match case.compare_region {
            Some((addr, len)) => {
                let mut buf = vec![0u8; len];
                self.emu.mem.read_bytes(addr, &mut buf);
                buf
            }
            None => Vec::new(),
        };
        Ok((ret, region, self.emu.stats().instructions))
    }
}

fn check_one(orig: &mut WarmRunner, new: &mut WarmRunner, case: &TestCase) -> Verdict {
    let orig = match orig.run(case, None) {
        Ok(v) => v,
        Err(e) => return Verdict::ExecutionError { error: format!("{e}"), in_rewritten: false },
    };
    let budget = orig
        .2
        .saturating_mul(VERIFY_BUDGET_MULTIPLIER)
        .clamp(VERIFY_BUDGET_FLOOR, raindrop_machine::DEFAULT_BUDGET);
    let new = match new.run(case, Some(budget)) {
        Ok(v) => v,
        Err(e) => return Verdict::ExecutionError { error: format!("{e}"), in_rewritten: true },
    };
    if orig.0 != new.0 {
        return Verdict::ReturnMismatch { original: orig.0, rewritten: new.0 };
    }
    if let Some(offset) = orig.1.iter().zip(&new.1).position(|(a, b)| a != b) {
        return Verdict::MemoryMismatch { offset };
    }
    Verdict::Match { value: orig.0 }
}

/// Runs one differential test case against the original and rewritten
/// images.
///
/// The rewritten run's instruction budget is derived from the original
/// run's measured cost ([`VERIFY_BUDGET_MULTIPLIER`] ×, with a
/// [`VERIFY_BUDGET_FLOOR`]), so a diverging rewrite fails fast with an
/// [`Verdict::ExecutionError`] rather than exhausting the emulator default.
/// For more than one case, [`verify_batch`] amortizes image loading and
/// instruction predecoding across the whole batch.
pub fn check_case(original: &Image, rewritten: &Image, func: &str, case: &TestCase) -> Verdict {
    verify_batch(original, rewritten, func, std::slice::from_ref(case)).remove(0)
}

/// Runs a batch of differential test cases against one original/rewritten
/// image pair, amortizing per-image setup across the batch: each image is
/// loaded into a warm emulator **once**, every case is executed from an
/// in-place snapshot restore, and the predecoded instruction cache filled by
/// earlier cases stays valid for later ones (text pages revert bit-identical
/// on restore, so their generations — and the decoded runs tagged with them
/// — survive).
///
/// Verdicts are returned in case order and are identical to running
/// [`check_case`] per case.
pub fn verify_batch(
    original: &Image,
    rewritten: &Image,
    func: &str,
    cases: &[TestCase],
) -> Vec<Verdict> {
    let mut orig = WarmRunner::new(original, func);
    let mut new = WarmRunner::new(rewritten, func);
    cases.iter().map(|case| check_one(&mut orig, &mut new, case)).collect()
}

/// Convenience: `true` iff every case matches.
pub fn equivalent(original: &Image, rewritten: &Image, func: &str, cases: &[TestCase]) -> bool {
    verify_batch(original, rewritten, func, cases).iter().all(Verdict::is_match)
}

// ---------------------------------------------------------------------------
// Static image audit (zero-emulation verification)
// ---------------------------------------------------------------------------

/// One finding of the static image audit.
///
/// The audit proves an emitted image well-formed without running anything:
/// it re-resolves the symbolic chain a [`RewriteReport`] retained and checks
/// the emitted bytes, gadget shapes and stack layout against it, re-decodes
/// every VM bytecode blob, and bounds-checks the symbol table. Any
/// diagnostic on a pipeline-produced image means the image was corrupted (or
/// the obfuscator miscompiled) — the differential suites would fail too,
/// but the audit localizes *where* at zero execution cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StaticDiagnostic {
    /// A symbol the audit needed does not exist in the image.
    MissingSymbol {
        /// The absent symbol name.
        name: String,
    },
    /// The retained symbolic chain no longer resolves.
    ChainResolve {
        /// The rewritten function.
        function: String,
        /// Rendered [`crate::chain::ChainError`].
        error: String,
    },
    /// The chain symbol points somewhere other than the reported address.
    ChainAddrMismatch {
        /// The rewritten function.
        function: String,
        /// Where the `__rop_chain_*` symbol points.
        symbol: u64,
        /// Where the report says the chain was materialized.
        reported: u64,
    },
    /// The re-resolved chain has a different size than the emitted one.
    ChainLenMismatch {
        /// The rewritten function.
        function: String,
        /// Re-resolved byte length.
        resolved: usize,
        /// Reported (emitted) byte length.
        reported: usize,
    },
    /// A byte of the emitted chain differs from the re-resolved chain.
    ChainBytesMismatch {
        /// The rewritten function.
        function: String,
        /// First differing chain offset.
        offset: usize,
    },
    /// A switch-table displacement patched into `.text` differs from the
    /// re-resolved value.
    SwitchPatchMismatch {
        /// The rewritten function.
        function: String,
        /// The patched text address.
        text_addr: u64,
    },
    /// A chain slot references an address that is not a usable gadget
    /// (outside text, undecodable, or missing a `ret`/`jmp reg` exit).
    GadgetUnusable {
        /// The rewritten function.
        function: String,
        /// Chain item index of the gadget slot.
        item: usize,
        /// The referenced address.
        addr: u64,
        /// What went wrong decoding it.
        reason: String,
    },
    /// A chain gadget lives inside a body the rewriter replaced (its bytes
    /// are pivot stub + filler now, or scheduled to become that).
    GadgetInRewrittenBody {
        /// The rewritten function whose chain references the gadget.
        function: String,
        /// Chain item index of the gadget slot.
        item: usize,
        /// The referenced address.
        addr: u64,
        /// The function whose (replaced) body contains it.
        owner: String,
    },
    /// The gadget at a chain slot consumes a different number of stack
    /// slots than the chain layout recorded for it.
    GadgetShapeMismatch {
        /// The rewritten function.
        function: String,
        /// Chain item index of the gadget slot.
        item: usize,
        /// The referenced address.
        addr: u64,
        /// Slots the chain layout budgets (junk pops + operand pop).
        expected_slots: usize,
        /// Slots the decoded gadget actually consumes.
        found_slots: usize,
    },
    /// The decoded gadget does not contain the primary instruction the
    /// chain requested it for.
    MissingPrimaryOp {
        /// The rewritten function.
        function: String,
        /// Chain item index of the gadget slot.
        item: usize,
        /// The referenced address.
        addr: u64,
        /// The requested operation (rendered).
        op: String,
    },
    /// A gadget's operand slots are not backed by data items: the stack
    /// delta does not balance against the chain layout.
    StackImbalance {
        /// The rewritten function.
        function: String,
        /// Chain item index of the gadget slot.
        item: usize,
        /// Operand slots the decoded gadget consumes.
        needed: usize,
        /// Data items actually following it in the layout.
        available: usize,
    },
    /// A gadget's junk side effects overwrite a register the next gadget's
    /// primary operation reads.
    GadgetClobbersSuccessor {
        /// The rewritten function.
        function: String,
        /// Chain item index of the clobbering gadget.
        item: usize,
        /// The clobbered register.
        reg: Reg,
    },
    /// A gadget's junk side effects overwrite the condition flags the next
    /// gadget's primary operation (`cmov`/`setcc`) reads.
    GadgetClobbersFlags {
        /// The rewritten function.
        function: String,
        /// Chain item index of the clobbering gadget.
        item: usize,
    },
    /// An emitted VM bytecode blob differs from what the VM pass recorded.
    BytecodeMismatch {
        /// The bytecode's `.data` symbol.
        symbol: String,
        /// First differing byte offset.
        offset: usize,
    },
    /// An emitted VM bytecode blob does not decode fully with in-bounds
    /// jump targets.
    BytecodeDecode {
        /// The bytecode's `.data` symbol.
        symbol: String,
        /// Rendered [`raindrop_obfvm::BytecodeError`].
        error: String,
    },
    /// A symbol points outside both the text and data sections.
    SymbolOutOfBounds {
        /// The dangling symbol.
        name: String,
        /// Where it points.
        addr: u64,
    },
    /// A function's `[addr, addr+size)` range is not contained in text.
    FunctionOutOfBounds {
        /// The function name.
        name: String,
        /// Function start address.
        addr: u64,
        /// Function size in bytes.
        size: u64,
    },
}

impl fmt::Display for StaticDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use StaticDiagnostic::*;
        match self {
            MissingSymbol { name } => write!(f, "symbol `{name}` is missing"),
            ChainResolve { function, error } => {
                write!(f, "{function}: retained chain no longer resolves: {error}")
            }
            ChainAddrMismatch { function, symbol, reported } => write!(
                f,
                "{function}: chain symbol points at {symbol:#x}, report says {reported:#x}"
            ),
            ChainLenMismatch { function, resolved, reported } => {
                write!(f, "{function}: chain resolves to {resolved} bytes, report says {reported}")
            }
            ChainBytesMismatch { function, offset } => {
                write!(f, "{function}: emitted chain differs at offset {offset}")
            }
            SwitchPatchMismatch { function, text_addr } => {
                write!(f, "{function}: switch patch at {text_addr:#x} differs")
            }
            GadgetUnusable { function, item, addr, reason } => {
                write!(f, "{function}: item {item} references {addr:#x}: {reason}")
            }
            GadgetInRewrittenBody { function, item, addr, owner } => {
                write!(f, "{function}: item {item} references {addr:#x} inside rewritten `{owner}`")
            }
            GadgetShapeMismatch { function, item, addr, expected_slots, found_slots } => write!(
                f,
                "{function}: item {item} gadget {addr:#x} consumes {found_slots} slots, \
                 layout budgets {expected_slots}"
            ),
            MissingPrimaryOp { function, item, addr, op } => {
                write!(f, "{function}: item {item} gadget {addr:#x} lacks its primary op `{op}`")
            }
            StackImbalance { function, item, needed, available } => write!(
                f,
                "{function}: item {item} needs {needed} operand slots, {available} follow"
            ),
            GadgetClobbersSuccessor { function, item, reg } => {
                write!(f, "{function}: item {item} junk clobbers successor input {reg}")
            }
            GadgetClobbersFlags { function, item } => {
                write!(f, "{function}: item {item} junk clobbers flags its successor reads")
            }
            BytecodeMismatch { symbol, offset } => {
                write!(f, "bytecode `{symbol}` differs at offset {offset}")
            }
            BytecodeDecode { symbol, error } => {
                write!(f, "bytecode `{symbol}` does not decode: {error}")
            }
            SymbolOutOfBounds { name, addr } => {
                write!(f, "symbol `{name}` points outside the image ({addr:#x})")
            }
            FunctionOutOfBounds { name, addr, size } => {
                write!(f, "function `{name}` [{addr:#x}, +{size}) is not contained in text")
            }
        }
    }
}

/// Audits every chain a ROP pass emitted into `image`.
///
/// Convenience over [`audit_rop_function`]: the replaced-body ranges are
/// derived from the report (every function the pass rewrote *or* scheduled
/// and failed — the crafter retires gadgets from all scheduled bodies up
/// front, so a chain referencing any of them is a miscompilation).
pub fn audit_rop_image(image: &Image, report: &ImageReport) -> Vec<StaticDiagnostic> {
    let mut ranges: Vec<(String, u64, u64)> = Vec::new();
    let scheduled = report
        .rewritten
        .iter()
        .map(|r| r.name.as_str())
        .chain(report.failures.iter().map(|(n, _)| n.as_str()));
    for name in scheduled {
        if let Ok(func) = image.function(name) {
            ranges.push((name.to_string(), func.addr, func.addr + func.size));
        }
    }
    let mut out = Vec::new();
    for rewrite in &report.rewritten {
        out.extend(audit_rop_function(image, rewrite, &ranges));
    }
    out
}

/// Statically audits one rewritten function's emitted chain against the
/// symbolic chain its [`RewriteReport`] retained.
///
/// Checks, in order: the chain symbol exists and matches the report; the
/// chain re-resolves to exactly the emitted bytes; every switch-table patch
/// matches the text; every gadget slot references a decodable, retained
/// gadget of the recorded shape; operand slots are backed by data items
/// (stack deltas balance); and no gadget's junk side effects clobber a
/// register (or the flags) its successor's primary operation reads.
///
/// `rewritten` lists `(owner, start, end)` body ranges replaced (or
/// scheduled for replacement) by the same rewriter — chain gadgets must not
/// live inside any of them.
pub fn audit_rop_function(
    image: &Image,
    report: &RewriteReport,
    rewritten: &[(String, u64, u64)],
) -> Vec<StaticDiagnostic> {
    let function = report.name.clone();
    let mut out = Vec::new();

    // 1. The chain data must be exactly what the symbolic chain resolves to.
    let chain_symbol = format!("__rop_chain_{function}");
    match image.symbol(&chain_symbol) {
        Err(_) => out.push(StaticDiagnostic::MissingSymbol { name: chain_symbol }),
        Ok(addr) if addr != report.chain_addr => {
            out.push(StaticDiagnostic::ChainAddrMismatch {
                function: function.clone(),
                symbol: addr,
                reported: report.chain_addr,
            });
        }
        Ok(_) => {}
    }
    let resolved = match report.chain.resolve() {
        Ok(r) => r,
        Err(e) => {
            out.push(StaticDiagnostic::ChainResolve { function, error: e.to_string() });
            return out;
        }
    };
    if resolved.bytes.len() != report.chain_len {
        out.push(StaticDiagnostic::ChainLenMismatch {
            function: function.clone(),
            resolved: resolved.bytes.len(),
            reported: report.chain_len,
        });
    }
    match image.data_slice(report.chain_addr, resolved.bytes.len()) {
        Ok(emitted) => {
            if let Some(offset) = emitted.iter().zip(&resolved.bytes).position(|(a, b)| a != b) {
                out.push(StaticDiagnostic::ChainBytesMismatch {
                    function: function.clone(),
                    offset,
                });
            }
        }
        Err(_) => {
            out.push(StaticDiagnostic::ChainBytesMismatch { function: function.clone(), offset: 0 })
        }
    }
    for (text_addr, disp) in &resolved.switch_values {
        let expected = (*disp as u64).to_le_bytes();
        match image.text_slice(*text_addr, 8) {
            Ok(bytes) if bytes == expected => {}
            _ => out.push(StaticDiagnostic::SwitchPatchMismatch {
                function: function.clone(),
                text_addr: *text_addr,
            }),
        }
    }

    // 2. Per-gadget checks over the chain layout. `prev` carries the last
    // fall-through gadget of the current basic block, for the clobber check.
    let mut prev: Option<(usize, GadgetSummary, GadgetOp)> = None;
    for (item_idx, item) in report.chain.items.iter().enumerate() {
        let ChainItem::Gadget { addr, junk_pops, op } = item else {
            if matches!(item, ChainItem::BlockStart(_) | ChainItem::Pad(_)) {
                // Control does not fall through block boundaries or padding.
                prev = None;
            }
            continue;
        };
        let summary = match summarize(image, *addr) {
            Ok(s) => s,
            Err(e) => {
                out.push(StaticDiagnostic::GadgetUnusable {
                    function: function.clone(),
                    item: item_idx,
                    addr: *addr,
                    reason: format!("{e:?}"),
                });
                prev = None;
                continue;
            }
        };
        for (owner, start, end) in rewritten {
            if *addr >= *start && *addr < *end {
                out.push(StaticDiagnostic::GadgetInRewrittenBody {
                    function: function.clone(),
                    item: item_idx,
                    addr: *addr,
                    owner: owner.clone(),
                });
            }
        }

        // Shape: the gadget consumes exactly the slots the layout budgets —
        // its junk pops plus the operand pop when the op *is* a pop.
        let expected_slots = junk_pops + usize::from(matches!(op, GadgetOp::Pop(_)));
        if summary.static_slots != expected_slots {
            out.push(StaticDiagnostic::GadgetShapeMismatch {
                function: function.clone(),
                item: item_idx,
                addr: *addr,
                expected_slots,
                found_slots: summary.static_slots,
            });
        }
        let primary = op.primary_inst();
        if let Some(ref pi) = primary {
            if !summary.insts.contains(pi) {
                out.push(StaticDiagnostic::MissingPrimaryOp {
                    function: function.clone(),
                    item: item_idx,
                    addr: *addr,
                    op: op.to_string(),
                });
            }
        }

        // Stack balance: each consumed slot must be backed by a data item.
        let following = report.chain.items[item_idx + 1..]
            .iter()
            .take_while(|i| matches!(i, ChainItem::Imm(_) | ChainItem::BranchDelta { .. }))
            .count();
        if following < summary.static_slots {
            out.push(StaticDiagnostic::StackImbalance {
                function: function.clone(),
                item: item_idx,
                needed: summary.static_slots,
                available: following,
            });
        }

        // Clobber: junk side effects of the previous fall-through gadget
        // must not overwrite what this gadget's primary operation consumes.
        // Junk *before* the previous gadget's primary is harmless when the
        // primary itself rewrites the clobbered register/flags (e.g. the
        // `pop r9; not r9; sub r11, rcx` shape: the sub re-establishes the
        // flags a following `setcc` reads).
        if let (Some((prev_idx, prev_sum, prev_op)), Some(ref pi)) = (&prev, &primary) {
            if let Some(prev_pi) = prev_op.primary_inst() {
                let mut needs = pi.regs_read();
                needs.remove(Reg::Rsp);
                let mut primary_seen = false;
                for inst in &prev_sum.insts {
                    if !primary_seen && *inst == prev_pi {
                        primary_seen = true;
                        continue;
                    }
                    let mut junk_writes = inst.regs_written();
                    junk_writes.remove(Reg::Rsp);
                    for reg in junk_writes.intersection(needs).iter() {
                        if !primary_seen && prev_pi.regs_written().contains(reg) {
                            continue;
                        }
                        out.push(StaticDiagnostic::GadgetClobbersSuccessor {
                            function: function.clone(),
                            item: *prev_idx,
                            reg,
                        });
                    }
                    if inst.writes_flags()
                        && pi.reads_flags()
                        && (primary_seen || !prev_pi.writes_flags())
                    {
                        out.push(StaticDiagnostic::GadgetClobbersFlags {
                            function: function.clone(),
                            item: *prev_idx,
                        });
                    }
                }
            }
        }

        // A branching / native-call / unpivoting gadget does not fall
        // through to the next layout item.
        let diverts = summary.sp_add.is_some()
            || summary.sp_load
            || matches!(summary.exit, GadgetExit::JmpReg(_));
        prev = if diverts { None } else { Some((item_idx, summary, *op)) };
    }
    out
}

/// Statically audits one VM bytecode blob: the `.data` symbol exists, holds
/// exactly the bytes the VM pass recorded, and decodes fully with in-bounds
/// jump targets under this layer's opcode assignment.
///
/// `seed` and `layer` are the virtualizer's effective seed and the blob's
/// absolute layer number (see [`raindrop_obfvm::decode_program`]).
pub fn audit_vm_code(
    image: &Image,
    symbol: &str,
    expected: &[u8],
    seed: u64,
    layer: usize,
) -> Vec<StaticDiagnostic> {
    let mut out = Vec::new();
    let addr = match image.symbol(symbol) {
        Ok(a) => a,
        Err(_) => {
            out.push(StaticDiagnostic::MissingSymbol { name: symbol.to_string() });
            return out;
        }
    };
    let emitted = match image.data_slice(addr, expected.len()) {
        Ok(bytes) => bytes,
        Err(_) => {
            out.push(StaticDiagnostic::SymbolOutOfBounds { name: symbol.to_string(), addr });
            return out;
        }
    };
    if let Some(offset) = emitted.iter().zip(expected).position(|(a, b)| a != b) {
        out.push(StaticDiagnostic::BytecodeMismatch { symbol: symbol.to_string(), offset });
    }
    if let Err(e) = raindrop_obfvm::decode_program(emitted, seed, layer) {
        out.push(StaticDiagnostic::BytecodeDecode {
            symbol: symbol.to_string(),
            error: e.to_string(),
        });
    }
    out
}

/// Bounds-checks the image's symbol table: every symbol points into text or
/// data, and every function range is contained in text.
pub fn audit_symbols(image: &Image) -> Vec<StaticDiagnostic> {
    let mut out = Vec::new();
    for (name, addr) in &image.symbols {
        if !image.in_text(*addr) && !image.in_data(*addr) {
            out.push(StaticDiagnostic::SymbolOutOfBounds { name: name.clone(), addr: *addr });
        }
    }
    let text_end = image.text_base + image.text.len() as u64;
    for func in &image.functions {
        if !image.in_text(func.addr) || func.addr + func.size > text_end {
            out.push(StaticDiagnostic::FunctionOutOfBounds {
                name: func.name.clone(),
                addr: func.addr,
                size: func.size,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RopConfig;
    use crate::rewriter::Rewriter;
    use raindrop_machine::{AluOp, Assembler, Cond, ImageBuilder, Inst, Mem, Reg};

    fn abs_diff_image() -> Image {
        let mut a = Assembler::new();
        let swap = a.new_label();
        let done = a.new_label();
        a.inst(Inst::Push(Reg::Rbp));
        a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
        a.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16));
        a.inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi));
        a.inst(Inst::Load(Reg::Rdi, Mem::base_disp(Reg::Rbp, -8)));
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
        a.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi));
        a.jcc(Cond::B, swap);
        a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rsi));
        a.jmp(done);
        a.bind(swap);
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rsi));
        a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rdi));
        a.bind(done);
        a.inst(Inst::Leave);
        a.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("absdiff", a);
        b.build().unwrap()
    }

    #[test]
    fn rewritten_function_is_equivalent_on_register_cases() {
        let original = abs_diff_image();
        let mut obf = original.clone();
        let mut rw = Rewriter::new(RopConfig::full());
        rw.rewrite_function(&mut obf, "absdiff").unwrap();
        let cases: Vec<TestCase> = [(9u64, 4u64), (4, 9), (0, 0), (u64::MAX, 1)]
            .iter()
            .map(|(a, b)| TestCase::args(&[*a, *b]))
            .collect();
        assert!(equivalent(&original, &obf, "absdiff", &cases));
    }

    #[test]
    fn mismatches_are_detected() {
        let original = abs_diff_image();
        // Compare the function against a *different* image where the
        // function body computes something else entirely.
        let mut other_builder = ImageBuilder::new();
        let mut a = Assembler::new();
        a.inst(Inst::MovRI(Reg::Rax, 1234));
        a.inst(Inst::Ret);
        other_builder.add_function("absdiff", a);
        let other = other_builder.build().unwrap();
        let verdicts = verify_batch(&original, &other, "absdiff", &[TestCase::args(&[9, 4])]);
        assert!(matches!(verdicts[0], Verdict::ReturnMismatch { original: 5, rewritten: 1234 }));
        assert!(!verdicts[0].is_match());
    }

    #[test]
    fn memory_regions_are_compared() {
        // A function writing its argument to a fixed global; compare that
        // global after the call.
        let mut b = ImageBuilder::new();
        let global = b.add_bss("out", 8);
        let mut a = Assembler::new();
        a.inst(Inst::Store(Mem::abs(global as i32), Reg::Rdi));
        a.inst(Inst::MovRI(Reg::Rax, 0));
        a.inst(Inst::Ret);
        b.add_function("store", a);
        let original = b.build().unwrap();
        let case = TestCase { args: vec![0xAB], memory: vec![], compare_region: Some((global, 8)) };
        let verdict = check_case(&original, &original, "store", &case);
        assert!(verdict.is_match());
    }

    #[test]
    fn static_audit_is_clean_on_a_full_strength_rewrite() {
        let original = abs_diff_image();
        let mut obf = original.clone();
        let mut rw = Rewriter::new(RopConfig::full());
        let report = rw.rewrite_function(&mut obf, "absdiff").unwrap();
        let func = obf.function("absdiff").unwrap().clone();
        let ranges = [("absdiff".to_string(), func.addr, func.addr + func.size)];
        let diags = audit_rop_function(&obf, &report, &ranges);
        assert!(diags.is_empty(), "healthy rewrite flagged: {diags:?}");
        assert!(audit_symbols(&obf).is_empty());
    }

    #[test]
    fn static_audit_flags_a_flipped_chain_word() {
        let original = abs_diff_image();
        let mut obf = original.clone();
        let mut rw = Rewriter::new(RopConfig::full());
        let report = rw.rewrite_function(&mut obf, "absdiff").unwrap();
        let off = (report.chain_addr - obf.data_base) as usize + 8;
        obf.data[off] ^= 0x40;
        let diags = audit_rop_function(&obf, &report, &[]);
        assert!(
            diags.iter().any(|d| matches!(d, StaticDiagnostic::ChainBytesMismatch { .. })),
            "flip not flagged: {diags:?}"
        );
    }

    #[test]
    fn static_audit_flags_dangling_symbols() {
        let mut image = abs_diff_image();
        image.symbols.insert("dangling".into(), 0xDEAD_0000_0000);
        let diags = audit_symbols(&image);
        assert!(
            matches!(&diags[..], [StaticDiagnostic::SymbolOutOfBounds { name, .. }] if name == "dangling")
        );
    }

    #[test]
    fn execution_errors_are_reported() {
        let original = abs_diff_image();
        let mut broken = original.clone();
        // Corrupt the function with undecodable bytes.
        let addr = broken.function("absdiff").unwrap().addr;
        broken.patch_text(addr, &[0xFF; 4]).unwrap();
        let verdict = check_case(&original, &broken, "absdiff", &TestCase::args(&[1, 2]));
        assert!(matches!(verdict, Verdict::ExecutionError { in_rewritten: true, .. }));
    }
}
