//! Chain crafting: lowering roplets to gadgets (§IV-B2) and weaving in the
//! strengthening predicates of §V.
//!
//! The crafter walks the reconstructed CFG block by block, translating every
//! original instruction into a short gadget sequence drawn from the
//! [`GadgetCatalog`], preserving the original register choices whenever
//! possible and drawing scratch registers from the dead set reported by the
//! liveness analysis. Branch terminators become variable RSP additions —
//! protected by P1 when enabled — and equality branches additionally receive
//! the P2 opaque adjustments on their outgoing paths. P3 instances are
//! inserted at a configurable fraction of eligible program points.

use crate::chain::{Chain, ChainItem, DeltaTarget, SwitchPatch};
use crate::config::{P3Variant, RopConfig};
use crate::error::RewriteError;
use crate::predicates::{P1Instance, P2Adjust, P2Operand, P3Policy};
use crate::roplet::{classify, RopletKind};
use crate::runtime::RopRuntime;
use raindrop_analysis::{BlockId, Cfg, InputDerived, Liveness, Terminator};
use raindrop_gadgets::{GadgetCatalog, GadgetOp};
use raindrop_machine::{AluOp, Cond, Image, Inst, Mem, Reg, RegSet};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Per-function crafting statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CraftStats {
    /// Original instructions translated (program points, column N of
    /// Table III).
    pub program_points: u64,
    /// P3 instances inserted.
    pub p3_sites: u64,
    /// P2 adjustments inserted.
    pub p2_sites: u64,
    /// Gadget-confusion insertions (disguised immediates + unaligned skips).
    pub confusion_sites: u64,
    /// Gadget-address slots emitted into the chain.
    pub gadget_slots: u64,
    /// Conditional/unconditional branch sites encoded.
    pub branch_sites: u64,
}

/// Scratch-register allocation order: caller-saved first, so the original
/// program's long-lived values (usually in callee-saved registers) are
/// disturbed as rarely as possible.
const SCRATCH_ORDER: [Reg; 15] = [
    Reg::R10,
    Reg::R11,
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::Rbx,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
    Reg::Rbp,
];

/// The chain crafter for a single function.
pub struct Crafter<'a> {
    image: &'a mut Image,
    catalog: &'a mut GadgetCatalog,
    runtime: &'a RopRuntime,
    config: &'a RopConfig,
    cfg: &'a Cfg,
    liveness: &'a Liveness,
    derived: &'a InputDerived,
    rng: ChaCha8Rng,
    chain: Chain,
    stats: CraftStats,
    p1: Option<P1Instance>,
    p2_plan: HashMap<BlockId, P2Adjust>,
    /// Registers a branch block's lowering must not clobber because the P2
    /// adjustments planned for its successors re-read them (the comparison
    /// operands are usually dead by liveness, but P2 extends their life).
    p2_protect: HashMap<BlockId, RegSet>,
    branch_counter: usize,
    /// Flags-preservation requirement of the instruction currently lowered.
    preserve_flags: bool,
    /// Scratch registers holding live temporaries of the lowering currently
    /// in progress; gadget requests must not clobber them.
    scratch_in_use: RegSet,
}

impl<'a> Crafter<'a> {
    /// Creates a crafter for one function.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        image: &'a mut Image,
        catalog: &'a mut GadgetCatalog,
        runtime: &'a RopRuntime,
        config: &'a RopConfig,
        cfg: &'a Cfg,
        liveness: &'a Liveness,
        derived: &'a InputDerived,
        seed: u64,
    ) -> Crafter<'a> {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p1 = config.p1.map(|p1cfg| {
            let mut inst = P1Instance::generate(p1cfg, &mut rng);
            let name = format!("__rop_p1_{}", cfg.name);
            inst.array_addr = image.append_data(Some(&name), &inst.array_bytes());
            inst
        });
        Crafter {
            image,
            catalog,
            runtime,
            config,
            cfg,
            liveness,
            derived,
            rng,
            chain: Chain::new(),
            stats: CraftStats::default(),
            p1,
            p2_plan: HashMap::new(),
            p2_protect: HashMap::new(),
            branch_counter: 0,
            preserve_flags: false,
            scratch_in_use: RegSet::new(),
        }
    }

    /// Runs the crafting pipeline and returns the symbolic chain.
    ///
    /// # Errors
    ///
    /// Returns a [`RewriteError`] when an instruction cannot be lowered
    /// (unsupported shape, register pressure, flag conflicts).
    pub fn craft(mut self) -> Result<(Chain, CraftStats, Option<P1Instance>), RewriteError> {
        if self.config.p2 {
            self.plan_p2();
        }
        for pos in 0..self.cfg.blocks.len() {
            self.emit_block(pos)?;
        }
        self.stats.gadget_slots = self.chain.gadget_slots() as u64;
        Ok((self.chain, self.stats, self.p1))
    }

    // ----------------------------------------------------------------- P2

    /// Pre-computes the P2 adjustment to place at the entry of branch
    /// successors. Only equality branches whose successor has a single
    /// predecessor are eligible (otherwise other incoming paths would be
    /// broken).
    fn plan_p2(&mut self) {
        let preds = self.cfg.predecessors();
        for b in &self.cfg.blocks {
            let Terminator::Branch { taken, fallthrough } = b.term else { continue };
            if preds[taken.0].len() != 1 || preds[fallthrough.0].len() != 1 {
                continue;
            }
            let n = b.insts.len();
            if n < 2 {
                continue;
            }
            let Some((_, Inst::Jcc(cond, _))) = b.insts.last() else { continue };
            let (lhs, rhs) = match b.insts[n - 2].1 {
                Inst::Cmp(a, bb) => (a, P2Operand::Reg(bb)),
                Inst::CmpI(a, i) => (a, P2Operand::Imm(i as i64)),
                _ => continue,
            };
            if let Some((adj_taken, adj_fall)) =
                P2Adjust::for_branch(*cond, lhs, rhs, &mut self.rng)
            {
                self.p2_plan.insert(taken, adj_taken);
                self.p2_plan.insert(fallthrough, adj_fall);
                let mut protect = RegSet::from_regs([lhs]);
                if let P2Operand::Reg(r) = rhs {
                    protect.insert(r);
                }
                self.p2_protect.insert(b.id, protect);
            }
        }
    }

    // --------------------------------------------------------- emission core

    fn gadget(&mut self, op: GadgetOp, avoid: RegSet, preserve_flags: bool) -> usize {
        let reads_flags = matches!(op, GadgetOp::Cmov(..) | GadgetOp::Set(..))
            || matches!(op, GadgetOp::Alu(o, _, _) | GadgetOp::AluLoad(o, _, _) | GadgetOp::AluStore(o, _, _) if o.reads_carry());
        let pf = preserve_flags || reads_flags;
        let avoid = avoid.union(self.scratch_in_use);
        let g = self.catalog.request(self.image, op, avoid, pf, &mut self.rng);
        let idx = self.chain.items.len();
        self.chain.items.push(ChainItem::Gadget { addr: g.addr, junk_pops: g.junk_pops.len(), op });
        for _ in 0..g.junk_pops.len() {
            let junk = self.rng.gen::<u32>() as u64;
            self.chain.items.push(ChainItem::Imm(junk));
        }
        idx
    }

    /// Emits `pop reg, value`, optionally disguising the immediate as a pair
    /// of gadget-address-looking values recombined at run time (§V-D).
    fn pop_value(&mut self, reg: Reg, value: u64, avoid: RegSet) {
        let avoid = avoid.union(self.scratch_in_use);
        let pf = self.preserve_flags;
        let can_disguise = self.config.gadget_confusion
            && !pf
            && !self.catalog.gadgets().is_empty()
            && self.rng.gen_bool(0.4);
        if can_disguise {
            let mut avoid2 = avoid;
            avoid2.insert(reg);
            if let Ok(t) = self.pick_scratch(avoid2, 1) {
                let t = t[0];
                let pool = self.catalog.gadgets();
                let cover = pool[self.rng.gen_range(0..pool.len())].addr;
                // reg = cover; t = cover - value; reg -= t  → reg = value.
                self.gadget(GadgetOp::Pop(reg), avoid, pf);
                self.chain.items.push(ChainItem::Imm(cover));
                self.gadget(GadgetOp::Pop(t), avoid, pf);
                self.chain.items.push(ChainItem::Imm(cover.wrapping_sub(value)));
                self.gadget(GadgetOp::Alu(AluOp::Sub, reg, t), avoid, pf);
                self.stats.confusion_sites += 1;
                return;
            }
        }
        self.gadget(GadgetOp::Pop(reg), avoid, pf);
        self.chain.items.push(ChainItem::Imm(value));
    }

    /// Emits `pop reg, <branch delta>` returning the index of the delta item
    /// so its anchor can be patched once the RSP-adding gadget is emitted.
    fn pop_delta(&mut self, reg: Reg, target: DeltaTarget, bias: i64, avoid: RegSet) -> usize {
        let pf = self.preserve_flags;
        self.gadget(GadgetOp::Pop(reg), avoid, pf);
        let idx = self.chain.items.len();
        self.chain.items.push(ChainItem::BranchDelta { target, anchor: usize::MAX, bias });
        idx
    }

    fn set_anchor(&mut self, delta_idx: usize, anchor_idx: usize) {
        if let ChainItem::BranchDelta { anchor, .. } = &mut self.chain.items[delta_idx] {
            *anchor = anchor_idx;
        }
    }

    fn pick_scratch(&mut self, protected: RegSet, count: usize) -> Result<Vec<Reg>, RewriteError> {
        let blocked = protected.union(self.scratch_in_use);
        let picked: Vec<Reg> =
            SCRATCH_ORDER.iter().copied().filter(|r| !blocked.contains(*r)).take(count).collect();
        if picked.len() < count {
            Err(RewriteError::RegisterPressure { addr: self.cfg.entry_addr })
        } else {
            for r in &picked {
                self.scratch_in_use.insert(*r);
            }
            Ok(picked)
        }
    }

    fn release_scratch(&mut self) {
        self.scratch_in_use = RegSet::new();
    }

    /// Loads the address of the current `other_rsp` slot (`ss + *ss`) into
    /// `dest`.
    fn emit_other_rsp_ptr(&mut self, dest: Reg, avoid: RegSet) {
        self.pop_value(dest, self.runtime.ss_addr, avoid);
        self.gadget(GadgetOp::AluLoad(AluOp::Add, dest, dest), avoid, self.preserve_flags);
    }

    /// Loads the current `other_rsp` *value* into `dest`.
    fn emit_other_rsp_value(&mut self, dest: Reg, avoid: RegSet) {
        self.emit_other_rsp_ptr(dest, avoid);
        self.gadget(GadgetOp::Load(dest, dest), avoid, self.preserve_flags);
    }

    /// Materializes the effective address of `mem` into `dest`. The address
    /// may involve the original stack pointer, which is redirected through
    /// `other_rsp` (§IV-B1: stack pointer reference roplets).
    fn emit_address(
        &mut self,
        mem: Mem,
        dest: Reg,
        avoid: RegSet,
        addr: u64,
    ) -> Result<(), RewriteError> {
        let uses_sp = mem.uses_sp();
        if uses_sp && mem.index == Some(Reg::Rsp) {
            return Err(RewriteError::UnsupportedInstruction {
                addr,
                inst: format!("address with RSP index {mem}"),
            });
        }
        let mut disp_pending = mem.disp != 0;
        if uses_sp {
            // dest = other_rsp (+ index*scale) + disp
            self.emit_other_rsp_value(dest, avoid);
        } else if let Some(base) = mem.base {
            if base != dest {
                self.gadget(GadgetOp::MovRR(dest, base), avoid, self.preserve_flags);
            }
        } else {
            // Absolute addressing: the displacement is the address.
            self.pop_value(dest, mem.disp as i64 as u64, avoid);
            disp_pending = false;
        }
        if let Some(index) = mem.index {
            if index == Reg::Rsp {
                unreachable!("checked above");
            }
            let mut avoid2 = avoid;
            avoid2.insert(dest);
            let t = self.pick_scratch(avoid2, 1)?[0];
            self.gadget(GadgetOp::MovRR(t, index), avoid2, self.preserve_flags);
            if mem.scale > 1 {
                let shift = mem.scale.trailing_zeros() as u8;
                self.gadget(GadgetOp::ShlImm(t, shift), avoid2, self.preserve_flags);
            }
            self.gadget(GadgetOp::Alu(AluOp::Add, dest, t), avoid2, self.preserve_flags);
        }
        if disp_pending {
            let mut avoid2 = avoid;
            avoid2.insert(dest);
            let t = self.pick_scratch(avoid2, 1)?[0];
            self.pop_value(t, mem.disp as i64 as u64, avoid2);
            self.gadget(GadgetOp::Alu(AluOp::Add, dest, t), avoid2, self.preserve_flags);
        }
        Ok(())
    }

    // -------------------------------------------------------------- blocks

    fn emit_block(&mut self, pos: usize) -> Result<(), RewriteError> {
        let block = &self.cfg.blocks[pos];
        let id = block.id;
        self.chain.items.push(ChainItem::BlockStart(id));

        // P2 adjustment at block entry, when planned.
        if let Some(adj) = self.p2_plan.get(&id).copied() {
            let avoid = self.liveness.live_in[id.0];
            if self.emit_p2(adj, avoid).is_ok() {
                self.stats.p2_sites += 1;
            }
        }

        let insts = block.insts.clone();
        let n = insts.len();
        for (i, (addr, inst)) in insts.iter().enumerate() {
            let is_term = inst.is_terminator();
            if is_term && i == n - 1 && !matches!(inst, Inst::Ret) {
                // Jmp / Jcc / JmpMem terminators are handled below with the
                // block terminator; Ret is an epilogue roplet handled here.
                break;
            }
            self.preserve_flags = if i == 0 { false } else { self.liveness.flags_after(id, i - 1) };

            // P3 at a fraction of eligible program points.
            let policy = P3Policy { fraction: self.config.p3_fraction };
            if !self.preserve_flags && policy.select(&mut self.rng) {
                let live_before = if i == 0 {
                    self.liveness.live_in[id.0]
                } else {
                    self.liveness.after(id, i - 1)
                };
                let derived_before = self.derived.before(id, i);
                if self.emit_p3(live_before, derived_before).unwrap_or(false) {
                    self.stats.p3_sites += 1;
                }
            }

            // Gadget confusion: occasional unaligned RSP skips.
            if self.config.gadget_confusion && !self.preserve_flags && self.rng.gen_bool(0.05) {
                let avoid = if i == 0 {
                    self.liveness.live_in[id.0]
                } else {
                    self.liveness.after(id, i - 1)
                };
                if self.emit_unaligned_skip(avoid).is_ok() {
                    self.stats.confusion_sites += 1;
                }
            }

            self.translate(id, i, *addr, inst)?;
            self.stats.program_points += 1;
        }

        // Terminator.
        let next_block = self.cfg.blocks.get(pos + 1).map(|b| b.id);
        let term = self.cfg.blocks[pos].term.clone();
        let live_out = self.liveness.live_out[id.0];
        match term {
            Terminator::Return => { /* handled by the Ret epilogue lowering */ }
            Terminator::FallThrough(target) => {
                if Some(target) != next_block {
                    self.emit_branch(None, target, live_out, id)?;
                }
            }
            Terminator::Jump(target) => {
                self.emit_branch(None, target, live_out, id)?;
            }
            Terminator::Branch { taken, fallthrough } => {
                let last = self.cfg.blocks[pos]
                    .insts
                    .last()
                    .expect("branch block has a terminator instruction");
                let Inst::Jcc(cond, _) = last.1 else {
                    return Err(RewriteError::UnsupportedInstruction {
                        addr: last.0,
                        inst: format!("{}", last.1),
                    });
                };
                // Keep the comparison operands intact when the successors
                // carry P2 adjustments that re-read them.
                let live_out =
                    live_out.union(self.p2_protect.get(&id).copied().unwrap_or(RegSet::EMPTY));
                self.preserve_flags = true;
                self.emit_branch(Some(cond), taken, live_out, id)?;
                self.stats.program_points += 1;
                self.preserve_flags = false;
                if Some(fallthrough) != next_block {
                    self.emit_branch(None, fallthrough, live_out, id)?;
                }
            }
            Terminator::Switch { targets, .. } => {
                let last = self.cfg.blocks[pos]
                    .insts
                    .last()
                    .expect("switch block has a terminator instruction");
                let Inst::JmpMem(mem) = last.1 else {
                    return Err(RewriteError::UnsupportedInstruction {
                        addr: last.0,
                        inst: format!("{}", last.1),
                    });
                };
                self.preserve_flags = false;
                self.emit_switch(last.0, mem, &targets, live_out)?;
                self.stats.program_points += 1;
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------- terminators

    /// Emits a (conditional) intra-procedural transfer to `target`.
    ///
    /// Without P1 this is the `pop L; pop 0; cmov{ncc}; add rsp` scheme of
    /// §IV-B2; with P1 the displacement is composed at run time from the
    /// opaque-array share and the branch-specific remainder (§V-A), using a
    /// `set<cc>`/multiply combination so the flag read happens first.
    fn emit_branch(
        &mut self,
        cond: Option<Cond>,
        target: BlockId,
        live_out: RegSet,
        _from: BlockId,
    ) -> Result<(), RewriteError> {
        self.release_scratch();
        self.stats.branch_sites += 1;
        let branch_index = self.branch_counter;
        self.branch_counter += 1;

        match (&self.p1, cond) {
            (None, None) => {
                // pop t, δ; add rsp, t
                let t = self.pick_scratch(live_out, 1)?[0];
                let delta_idx = self.pop_delta(t, DeltaTarget::Block(target), 0, live_out);
                let anchor = self.gadget(GadgetOp::AddRsp(t), live_out, self.preserve_flags);
                self.set_anchor(delta_idx, anchor);
            }
            (None, Some(cc)) => {
                // pop t1, δ; pop t2, 0; cmov{ncc} t1, t2; add rsp, t1
                let ts = self.pick_scratch(live_out, 2)?;
                let (t1, t2) = (ts[0], ts[1]);
                let delta_idx = self.pop_delta(t1, DeltaTarget::Block(target), 0, live_out);
                self.gadget(GadgetOp::Pop(t2), live_out, true);
                self.chain.items.push(ChainItem::Imm(0));
                self.gadget(GadgetOp::Cmov(cc.negate(), t1, t2), live_out, true);
                let anchor = self.gadget(GadgetOp::AddRsp(t1), live_out, true);
                self.set_anchor(delta_idx, anchor);
            }
            (Some(_), maybe_cc) => {
                let p1 = self.p1.clone().expect("checked");
                let (ordinal, share) = p1.share_for(branch_index);
                let needed = if maybe_cc.is_some() { 3 } else { 2 };
                let ts = self.pick_scratch(live_out, needed)?;
                let (t_cond, t1, t2) = if maybe_cc.is_some() {
                    (Some(ts[0]), ts[1], ts[2])
                } else {
                    (None, ts[0], ts[1])
                };
                // Consume the flags first so the P1 arithmetic below may
                // pollute them freely.
                if let (Some(cc), Some(tc)) = (maybe_cc, t_cond) {
                    self.gadget(GadgetOp::Set(cc, tc), live_out, true);
                }
                self.preserve_flags = false;
                // f(x): opaquely combine input-derived live registers.
                let derived_live: Vec<Reg> = self
                    .derived
                    .at_entry
                    .get(_from.0)
                    .copied()
                    .unwrap_or(RegSet::EMPTY)
                    .intersection(live_out)
                    .iter()
                    .filter(|r| *r != t1 && *r != t2 && Some(*r) != t_cond)
                    .collect();
                match derived_live.first() {
                    Some(r) => {
                        self.gadget(GadgetOp::MovRR(t1, *r), live_out, false);
                        if let Some(r2) = derived_live.get(1) {
                            self.gadget(GadgetOp::Alu(AluOp::Xor, t1, *r2), live_out, false);
                        }
                    }
                    None => {
                        let v = self.rng.gen::<u32>() as u64;
                        self.pop_value(t1, v, live_out);
                    }
                }
                // t1 = f(x) mod p  → period index.
                self.pop_value(t2, p1.config.p as u64, live_out);
                self.gadget(GadgetOp::Rem(t1, t2), live_out, false);
                // t1 = A + (f(x)*s + ordinal) * 8
                self.pop_value(t2, (p1.config.s * 8) as u64, live_out);
                self.gadget(GadgetOp::Mul(t1, t2), live_out, false);
                self.pop_value(t2, p1.array_addr + (ordinal as u64) * 8, live_out);
                self.gadget(GadgetOp::Alu(AluOp::Add, t1, t2), live_out, false);
                self.gadget(GadgetOp::Load(t1, t1), live_out, false);
                // t1 = a  (the hidden share)
                self.pop_value(t2, p1.config.m, live_out);
                self.gadget(GadgetOp::Rem(t1, t2), live_out, false);
                // t2 = δ - a ; t1 = δ
                self.gadget(GadgetOp::Pop(t2), live_out, false);
                let delta_idx = self.chain.items.len();
                self.chain.items.push(ChainItem::BranchDelta {
                    target: DeltaTarget::Block(target),
                    anchor: usize::MAX,
                    bias: -(share as i64),
                });
                self.gadget(GadgetOp::Alu(AluOp::Add, t1, t2), live_out, false);
                // Conditional: multiply by the 0/1 condition value.
                if let Some(tc) = t_cond {
                    self.gadget(GadgetOp::Mul(t1, tc), live_out, false);
                }
                let anchor = self.gadget(GadgetOp::AddRsp(t1), live_out, false);
                self.set_anchor(delta_idx, anchor);
            }
        }
        Ok(())
    }

    /// Emits a switch-table dispatch (Appendix A): the original jump-table
    /// computation is reused, but the target locations in `.text` are
    /// patched to hold RSP displacements which the chain reads and adds.
    fn emit_switch(
        &mut self,
        addr: u64,
        mem: Mem,
        targets: &[BlockId],
        live_out: RegSet,
    ) -> Result<(), RewriteError> {
        self.release_scratch();
        self.stats.branch_sites += 1;
        let ts = self.pick_scratch(live_out.union(mem.regs()), 1)?;
        let t1 = ts[0];
        // t1 = address of the jump-table slot = table + index*8 (+base).
        self.emit_address(mem, t1, live_out.union(mem.regs()), addr)?;
        // t1 = original case address (read from the table in .data).
        self.gadget(GadgetOp::Load(t1, t1), live_out, false);
        // t1 = displacement stored at the original case address.
        self.gadget(GadgetOp::Load(t1, t1), live_out, false);
        let anchor = self.gadget(GadgetOp::AddRsp(t1), live_out, false);

        // Record a patch for every distinct case address: the displacement
        // to that case's chain block will be written into .text at
        // materialization time.
        let mut seen = std::collections::BTreeSet::new();
        for target in targets {
            let case_addr = self.cfg.block(*target).start;
            if seen.insert(case_addr) {
                self.chain.switch_patches.push(SwitchPatch {
                    text_addr: case_addr,
                    target: DeltaTarget::Block(*target),
                    anchor,
                });
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- predicates

    fn emit_p2(&mut self, adj: P2Adjust, live: RegSet) -> Result<(), RewriteError> {
        self.release_scratch();
        match adj {
            P2Adjust::WhenEqual { lhs, rhs, x } => {
                let mut avoid = live;
                avoid.insert(lhs);
                if let P2Operand::Reg(r) = rhs {
                    avoid.insert(r);
                }
                let ts = self.pick_scratch(avoid, 2)?;
                let (t1, t2) = (ts[0], ts[1]);
                // t1 = lhs - rhs; t1 *= x; rsp += t1 (zero on the honest path).
                self.gadget(GadgetOp::MovRR(t1, lhs), avoid, false);
                match rhs {
                    P2Operand::Reg(r) => {
                        self.gadget(GadgetOp::Alu(AluOp::Sub, t1, r), avoid, false);
                    }
                    P2Operand::Imm(i) => {
                        self.pop_value(t2, i as u64, avoid);
                        self.gadget(GadgetOp::Alu(AluOp::Sub, t1, t2), avoid, false);
                    }
                }
                self.pop_value(t2, x, avoid);
                self.gadget(GadgetOp::Mul(t1, t2), avoid, false);
                self.gadget(GadgetOp::AddRsp(t1), avoid, false);
            }
            P2Adjust::WhenNotEqual { lhs, rhs, x } => {
                let mut avoid = live;
                avoid.insert(lhs);
                if let P2Operand::Reg(r) = rhs {
                    avoid.insert(r);
                }
                let ts = self.pick_scratch(avoid, 3)?;
                let (t1, t2, t3) = (ts[0], ts[1], ts[2]);
                // t1 = lhs - rhs
                self.gadget(GadgetOp::MovRR(t1, lhs), avoid, false);
                match rhs {
                    P2Operand::Reg(r) => {
                        self.gadget(GadgetOp::Alu(AluOp::Sub, t1, r), avoid, false);
                    }
                    P2Operand::Imm(i) => {
                        self.pop_value(t2, i as u64, avoid);
                        self.gadget(GadgetOp::Alu(AluOp::Sub, t1, t2), avoid, false);
                    }
                }
                // t2 = notZero(t1) = (~(~t1 & (t1 + ~0)) >> 63) & 1, flag-free.
                self.gadget(GadgetOp::MovRR(t2, t1), avoid, false);
                self.gadget(GadgetOp::Not(t2), avoid, false);
                self.pop_value(t3, u64::MAX, avoid);
                self.gadget(GadgetOp::Alu(AluOp::Add, t1, t3), avoid, false);
                self.gadget(GadgetOp::Alu(AluOp::And, t2, t1), avoid, false);
                self.gadget(GadgetOp::Not(t2), avoid, false);
                self.gadget(GadgetOp::ShrImm(t2, 63), avoid, false);
                // t3 = x * (1 - notZero)
                self.pop_value(t3, 1, avoid);
                self.gadget(GadgetOp::Alu(AluOp::Sub, t3, t2), avoid, false);
                self.pop_value(t2, x, avoid);
                self.gadget(GadgetOp::Mul(t3, t2), avoid, false);
                self.gadget(GadgetOp::AddRsp(t3), avoid, false);
            }
        }
        Ok(())
    }

    /// Emits one P3 instance; returns `Ok(true)` when a site was actually
    /// instrumented (eligibility can fail when no input-derived live
    /// register or not enough dead registers are available).
    fn emit_p3(&mut self, live: RegSet, derived: RegSet) -> Result<bool, RewriteError> {
        self.release_scratch();
        let sym = match derived.intersection(live).iter().next() {
            Some(r) if r != Reg::Rsp => r,
            _ => return Ok(false),
        };
        let mut avoid = live;
        avoid.insert(sym);
        let variant = match self.config.p3_variant {
            P3Variant::ForLoop => 0,
            P3Variant::ArrayUpdate => 1,
            P3Variant::Mixed => self.rng.gen_range(0..2),
        };
        if variant == 1 && self.p1.is_some() {
            // Opaque array update: A[cell] += m * (sym & 7); the congruence
            // invariant every later branch relies on is preserved.
            let p1 = self.p1.clone().expect("checked");
            let Ok(ts) = self.pick_scratch(avoid, 2) else { return Ok(false) };
            let (t1, t2) = (ts[0], ts[1]);
            self.gadget(GadgetOp::MovRR(t1, sym), avoid, false);
            self.pop_value(t2, 7, avoid);
            self.gadget(GadgetOp::Alu(AluOp::And, t1, t2), avoid, false);
            self.pop_value(t2, p1.config.m, avoid);
            self.gadget(GadgetOp::Mul(t1, t2), avoid, false);
            let cell = self.rng.gen_range(0..p1.cells.len());
            self.pop_value(t2, p1.array_addr + (cell as u64) * 8, avoid);
            self.gadget(GadgetOp::AluStore(AluOp::Add, t2, t1), avoid, false);
            return Ok(true);
        }
        // FOR variant: dead = 0; t1 = (sym & 0xff) + 1;
        // do { dead += 1; t1 -= 1 } while t1 != 0;
        // dead -= 1; sym |= dead   (sym is unchanged, the loop is opaque).
        let Ok(ts) = self.pick_scratch(avoid, 4) else { return Ok(false) };
        let (dead, t1, t2, t3) = (ts[0], ts[1], ts[2], ts[3]);
        self.pop_value(dead, 0, avoid);
        self.gadget(GadgetOp::MovRR(t1, sym), avoid, false);
        self.pop_value(t2, 0xff, avoid);
        self.gadget(GadgetOp::Alu(AluOp::And, t1, t2), avoid, false);
        self.pop_value(t2, 1, avoid);
        self.gadget(GadgetOp::Alu(AluOp::Add, t1, t2), avoid, false);
        // Loop head: the backward branch below targets this item index.
        let loop_head = self.chain.items.len();
        self.pop_value(t2, 1, avoid);
        self.gadget(GadgetOp::Alu(AluOp::Add, dead, t2), avoid, false);
        self.gadget(GadgetOp::Alu(AluOp::Sub, t1, t2), avoid, false);
        self.gadget(GadgetOp::Set(Cond::Ne, t3), avoid, true);
        self.gadget(GadgetOp::Pop(t2), avoid, false);
        let delta_idx = self.chain.items.len();
        self.chain.items.push(ChainItem::BranchDelta {
            target: DeltaTarget::Item(loop_head),
            anchor: usize::MAX,
            bias: 0,
        });
        self.gadget(GadgetOp::Mul(t2, t3), avoid, false);
        let anchor = self.gadget(GadgetOp::AddRsp(t2), avoid, false);
        self.set_anchor(delta_idx, anchor);
        // Loop exit: dead == (sym & 0xff) + 1.
        self.pop_value(t2, 1, avoid);
        self.gadget(GadgetOp::Alu(AluOp::Sub, dead, t2), avoid, false);
        self.gadget(GadgetOp::Alu(AluOp::Or, sym, dead), avoid, false);
        Ok(true)
    }

    /// Gadget confusion: an unaligned RSP skip (`η mod 8 != 0`, §V-D) over a
    /// few bytes of padding that look like gadget-address material.
    fn emit_unaligned_skip(&mut self, avoid: RegSet) -> Result<(), RewriteError> {
        self.release_scratch();
        let t = self.pick_scratch(avoid, 1)?[0];
        let eta: u64 = self.rng.gen_range(1..8u64) + 8 * self.rng.gen_range(0..2u64);
        self.gadget(GadgetOp::Pop(t), avoid, false);
        self.chain.items.push(ChainItem::Imm(eta));
        self.gadget(GadgetOp::AddRsp(t), avoid, false);
        // Padding bytes: slices of plausible gadget addresses.
        let pool = self.catalog.gadgets();
        let seed_addr = if pool.is_empty() {
            self.image.text_base
        } else {
            pool[self.rng.gen_range(0..pool.len())].addr
        };
        let bytes: Vec<u8> =
            seed_addr.to_le_bytes().into_iter().cycle().take(eta as usize).collect();
        self.chain.items.push(ChainItem::Pad(bytes));
        Ok(())
    }

    // -------------------------------------------------- instruction lowering

    fn translate(
        &mut self,
        block: BlockId,
        idx: usize,
        addr: u64,
        inst: &Inst,
    ) -> Result<(), RewriteError> {
        self.release_scratch();
        let live_after = self.liveness.after(block, idx);
        let protected = live_after.union(inst.regs_read()).union(inst.regs_written());
        let pf = self.preserve_flags;
        let kind = classify(inst);

        let unsupported =
            |inst: &Inst| RewriteError::UnsupportedInstruction { addr, inst: format!("{inst}") };

        match kind {
            RopletKind::DataMove | RopletKind::Alu => {
                self.lower_plain(addr, inst, protected, pf)?;
            }
            RopletKind::DirectStackAccess => match *inst {
                Inst::Push(r) => {
                    let ts = self
                        .pick_scratch(protected, 3)
                        .map_err(|_| RewriteError::RegisterPressure { addr })?;
                    let (t1, t2, t3) = (ts[0], ts[1], ts[2]);
                    self.emit_other_rsp_ptr(t1, protected);
                    self.gadget(GadgetOp::Load(t2, t1), protected, pf);
                    self.pop_value(t3, 8, protected);
                    self.gadget(GadgetOp::Alu(AluOp::Sub, t2, t3), protected, pf);
                    self.gadget(GadgetOp::Store(t1, t2), protected, pf);
                    self.gadget(GadgetOp::Store(t2, r), protected, pf);
                }
                Inst::PushI(v) => {
                    let ts = self
                        .pick_scratch(protected, 3)
                        .map_err(|_| RewriteError::RegisterPressure { addr })?;
                    let (t1, t2, t3) = (ts[0], ts[1], ts[2]);
                    self.emit_other_rsp_ptr(t1, protected);
                    self.gadget(GadgetOp::Load(t2, t1), protected, pf);
                    self.pop_value(t3, 8, protected);
                    self.gadget(GadgetOp::Alu(AluOp::Sub, t2, t3), protected, pf);
                    self.gadget(GadgetOp::Store(t1, t2), protected, pf);
                    self.pop_value(t3, v as i64 as u64, protected);
                    self.gadget(GadgetOp::Store(t2, t3), protected, pf);
                }
                Inst::Pop(r) => {
                    if r == Reg::Rsp {
                        return Err(unsupported(inst));
                    }
                    let ts = self
                        .pick_scratch(protected, 3)
                        .map_err(|_| RewriteError::RegisterPressure { addr })?;
                    let (t1, t2, t3) = (ts[0], ts[1], ts[2]);
                    self.emit_other_rsp_ptr(t1, protected);
                    self.gadget(GadgetOp::Load(t2, t1), protected, pf);
                    self.gadget(GadgetOp::Load(r, t2), protected, pf);
                    self.pop_value(t3, 8, protected);
                    self.gadget(GadgetOp::Alu(AluOp::Add, t2, t3), protected, pf);
                    self.gadget(GadgetOp::Store(t1, t2), protected, pf);
                }
                _ => return Err(unsupported(inst)),
            },
            RopletKind::StackPtrRef => self.lower_stack_ptr_ref(addr, inst, protected, pf)?,
            RopletKind::Epilogue => match inst {
                Inst::Leave => {
                    let ts = self
                        .pick_scratch(protected, 3)
                        .map_err(|_| RewriteError::RegisterPressure { addr })?;
                    let (t1, t2, t3) = (ts[0], ts[1], ts[2]);
                    // other_rsp = rbp; rbp = *other_rsp; other_rsp += 8.
                    self.emit_other_rsp_ptr(t1, protected);
                    self.gadget(GadgetOp::MovRR(t2, Reg::Rbp), protected, pf);
                    self.gadget(GadgetOp::Load(Reg::Rbp, t2), protected, pf);
                    self.pop_value(t3, 8, protected);
                    self.gadget(GadgetOp::Alu(AluOp::Add, t2, t3), protected, pf);
                    self.gadget(GadgetOp::Store(t1, t2), protected, pf);
                }
                Inst::Ret => self.lower_ret(live_after)?,
                _ => return Err(unsupported(inst)),
            },
            RopletKind::InterCall => match *inst {
                Inst::Call(rel) => {
                    let next = addr + raindrop_machine::encoded_len(inst) as u64;
                    let callee = next.wrapping_add(rel as i64 as u64);
                    self.lower_call(callee, live_after)?;
                }
                _ => return Err(unsupported(inst)),
            },
            RopletKind::IntraTransfer | RopletKind::SwitchTransfer | RopletKind::TailJump => {
                // Terminators are handled by emit_block; reaching here means
                // the instruction appeared mid-block, which the CFG
                // reconstruction rules out.
                return Err(unsupported(inst));
            }
            RopletKind::IpRef => return Err(unsupported(inst)),
        }
        Ok(())
    }

    fn lower_plain(
        &mut self,
        addr: u64,
        inst: &Inst,
        protected: RegSet,
        pf: bool,
    ) -> Result<(), RewriteError> {
        match *inst {
            Inst::Nop => {}
            Inst::MovRR(d, s) => {
                self.gadget(GadgetOp::MovRR(d, s), protected, pf);
            }
            Inst::MovRI(d, v) => self.pop_value(d, v as u64, protected),
            Inst::Alu(op, d, s) => {
                self.gadget(GadgetOp::Alu(op, d, s), protected, pf);
            }
            Inst::AluI(op, d, v) => {
                if pf && !inst.writes_flags() {
                    return Err(RewriteError::FlagsLiveAcrossLowering { addr });
                }
                let t = self.pick_scratch(protected, 1)?[0];
                self.pop_value(t, v as i64 as u64, protected);
                self.gadget(GadgetOp::Alu(op, d, t), protected, pf);
            }
            Inst::Neg(r) => {
                self.gadget(GadgetOp::Neg(r), protected, pf);
            }
            Inst::Not(r) => {
                self.gadget(GadgetOp::Not(r), protected, pf);
            }
            Inst::Mul(d, s) => {
                self.gadget(GadgetOp::Mul(d, s), protected, pf);
            }
            Inst::MulI(d, s, v) => {
                let t = self.pick_scratch(protected, 1)?[0];
                if d != s {
                    self.gadget(GadgetOp::MovRR(d, s), protected, pf);
                }
                self.pop_value(t, v as i64 as u64, protected);
                self.gadget(GadgetOp::Mul(d, t), protected, pf);
            }
            Inst::Div(d, s) => {
                self.gadget(GadgetOp::Div(d, s), protected, pf);
            }
            Inst::Rem(d, s) => {
                self.gadget(GadgetOp::Rem(d, s), protected, pf);
            }
            Inst::Shl(r, i) => {
                self.gadget(GadgetOp::ShlImm(r, i), protected, pf);
            }
            Inst::Shr(r, i) => {
                self.gadget(GadgetOp::ShrImm(r, i), protected, pf);
            }
            Inst::Sar(r, i) => {
                self.gadget(GadgetOp::SarImm(r, i), protected, pf);
            }
            Inst::ShlR(d, s) => {
                self.gadget(GadgetOp::ShlReg(d, s), protected, pf);
            }
            Inst::ShrR(d, s) => {
                self.gadget(GadgetOp::ShrReg(d, s), protected, pf);
            }
            Inst::Cmp(a, b) => {
                self.gadget(GadgetOp::Cmp(a, b), protected, pf);
            }
            Inst::CmpI(a, v) => {
                let t = self.pick_scratch(protected, 1)?[0];
                self.pop_value(t, v as i64 as u64, protected);
                self.gadget(GadgetOp::Cmp(a, t), protected, pf);
            }
            Inst::Test(a, b) => {
                self.gadget(GadgetOp::Test(a, b), protected, pf);
            }
            Inst::TestI(a, v) => {
                let t = self.pick_scratch(protected, 1)?[0];
                self.pop_value(t, v as i64 as u64, protected);
                self.gadget(GadgetOp::Test(a, t), protected, pf);
            }
            Inst::Cmov(c, d, s) => {
                self.gadget(GadgetOp::Cmov(c, d, s), protected, true);
            }
            Inst::Set(c, d) => {
                self.gadget(GadgetOp::Set(c, d), protected, true);
            }
            Inst::Load(d, m) | Inst::LoadB(d, m) | Inst::LoadSxB(d, m) => {
                let addr_reg = if !m.regs().contains(d) && d != Reg::Rsp {
                    d
                } else {
                    self.pick_scratch(protected, 1)?[0]
                };
                self.emit_address(m, addr_reg, protected, addr)?;
                let op = match inst {
                    Inst::Load(..) => GadgetOp::Load(d, addr_reg),
                    Inst::LoadB(..) => GadgetOp::LoadByte(d, addr_reg),
                    _ => GadgetOp::LoadByteSx(d, addr_reg),
                };
                self.gadget(op, protected, pf);
            }
            Inst::Store(m, s) | Inst::StoreB(m, s) => {
                let mut avoid = protected;
                avoid.insert(s);
                let t = self.pick_scratch(avoid, 1)?[0];
                self.emit_address(m, t, avoid, addr)?;
                let op = match inst {
                    Inst::Store(..) => GadgetOp::Store(t, s),
                    _ => GadgetOp::StoreByte(t, s),
                };
                self.gadget(op, protected, pf);
            }
            Inst::StoreI(m, v) => {
                let ts = self.pick_scratch(protected, 2)?;
                let (t1, t2) = (ts[0], ts[1]);
                self.emit_address(m, t1, protected, addr)?;
                self.pop_value(t2, v as i64 as u64, protected);
                self.gadget(GadgetOp::Store(t1, t2), protected, pf);
            }
            Inst::AluM(op, d, m) => {
                let t = self.pick_scratch(protected, 1)?[0];
                self.emit_address(m, t, protected, addr)?;
                self.gadget(GadgetOp::AluLoad(op, d, t), protected, pf);
            }
            Inst::AluStore(op, m, s) => {
                let mut avoid = protected;
                avoid.insert(s);
                let t = self.pick_scratch(avoid, 1)?[0];
                self.emit_address(m, t, avoid, addr)?;
                self.gadget(GadgetOp::AluStore(op, t, s), protected, pf);
            }
            Inst::CmpMI(m, v) => {
                let ts = self.pick_scratch(protected, 2)?;
                let (t1, t2) = (ts[0], ts[1]);
                self.emit_address(m, t1, protected, addr)?;
                self.gadget(GadgetOp::Load(t1, t1), protected, pf);
                self.pop_value(t2, v as i64 as u64, protected);
                self.gadget(GadgetOp::Cmp(t1, t2), protected, pf);
            }
            Inst::Lea(d, m) => {
                if !m.regs().contains(d) {
                    self.emit_address(m, d, protected, addr)?;
                } else {
                    let t = self.pick_scratch(protected, 1)?[0];
                    self.emit_address(m, t, protected, addr)?;
                    self.gadget(GadgetOp::MovRR(d, t), protected, pf);
                }
            }
            Inst::XchgRR(a, b) => {
                let t = self.pick_scratch(protected, 1)?[0];
                self.gadget(GadgetOp::MovRR(t, a), protected, pf);
                self.gadget(GadgetOp::MovRR(a, b), protected, pf);
                self.gadget(GadgetOp::MovRR(b, t), protected, pf);
            }
            _ => {
                return Err(RewriteError::UnsupportedInstruction { addr, inst: format!("{inst}") })
            }
        }
        Ok(())
    }

    fn lower_stack_ptr_ref(
        &mut self,
        addr: u64,
        inst: &Inst,
        protected: RegSet,
        pf: bool,
    ) -> Result<(), RewriteError> {
        match *inst {
            // mov d, rsp → d = other_rsp
            Inst::MovRR(d, Reg::Rsp) => {
                self.emit_other_rsp_value(d, protected);
            }
            // mov rsp, s → other_rsp = s
            Inst::MovRR(Reg::Rsp, s) => {
                let mut avoid = protected;
                avoid.insert(s);
                let t = self.pick_scratch(avoid, 1)?[0];
                self.emit_other_rsp_ptr(t, avoid);
                self.gadget(GadgetOp::Store(t, s), protected, pf);
            }
            // add/sub rsp, imm → other_rsp ± imm
            Inst::AluI(op @ (AluOp::Add | AluOp::Sub), Reg::Rsp, v) => {
                let ts = self.pick_scratch(protected, 2)?;
                let (t1, t2) = (ts[0], ts[1]);
                self.emit_other_rsp_ptr(t1, protected);
                self.pop_value(t2, v as i64 as u64, protected);
                self.gadget(GadgetOp::AluStore(op, t1, t2), protected, pf);
            }
            // add/sub rsp, reg
            Inst::Alu(op @ (AluOp::Add | AluOp::Sub), Reg::Rsp, s) => {
                let mut avoid = protected;
                avoid.insert(s);
                let t1 = self.pick_scratch(avoid, 1)?[0];
                self.emit_other_rsp_ptr(t1, avoid);
                self.gadget(GadgetOp::AluStore(op, t1, s), protected, pf);
            }
            // lea d, [rsp + disp]
            Inst::Lea(d, m) if m.base == Some(Reg::Rsp) && m.index.is_none() => {
                self.emit_other_rsp_value(d, protected);
                if m.disp != 0 {
                    let mut avoid = protected;
                    avoid.insert(d);
                    let t = self.pick_scratch(avoid, 1)?[0];
                    self.pop_value(t, m.disp as i64 as u64, avoid);
                    self.gadget(GadgetOp::Alu(AluOp::Add, d, t), protected, pf);
                }
            }
            // Loads/stores whose address involves rsp: lower through the
            // generic memory path, which redirects rsp to other_rsp.
            Inst::Load(..)
            | Inst::Store(..)
            | Inst::StoreI(..)
            | Inst::LoadB(..)
            | Inst::LoadSxB(..)
            | Inst::StoreB(..)
            | Inst::AluM(..)
            | Inst::AluStore(..)
            | Inst::CmpMI(..) => {
                self.lower_plain(addr, inst, protected, pf)?;
            }
            _ => {
                return Err(RewriteError::UnsupportedInstruction { addr, inst: format!("{inst}") })
            }
        }
        Ok(())
    }

    /// The epilogue lowering (unpivot, Appendix A): release the `ss` slot and
    /// return to the native caller with the original return address.
    fn lower_ret(&mut self, live_after: RegSet) -> Result<(), RewriteError> {
        let avoid = live_after;
        let ts = self.pick_scratch(avoid, 2)?;
        let (t1, t2) = (ts[0], ts[1]);
        self.pop_value(t1, self.runtime.ss_addr, avoid);
        self.pop_value(t2, 8, avoid);
        self.gadget(GadgetOp::AluStore(AluOp::Sub, t1, t2), avoid, false);
        self.gadget(GadgetOp::AluLoad(AluOp::Add, t1, t1), avoid, false);
        self.gadget(GadgetOp::Alu(AluOp::Add, t1, t2), avoid, false);
        // rsp = saved native rsp; this gadget's own `ret` then pops the
        // original return address from the native stack.
        self.gadget(GadgetOp::Load(Reg::Rsp, t1), avoid, false);
        Ok(())
    }

    /// Call to a native (or other ROP) function: the three-step stack switch
    /// of Fig. 4.
    fn lower_call(&mut self, callee: u64, live_after: RegSet) -> Result<(), RewriteError> {
        // Registers that must survive until control reaches the callee: the
        // argument registers plus whatever callee-saved state outlives the
        // call. Caller-saved registers (rax, r10, r11, …) are clobbered by
        // the call anyway, so they are fair game as scratch.
        let mut avoid = RegSet::from_regs(Reg::ARGS);
        avoid = avoid.union(live_after.difference(RegSet::from_regs(Reg::CALLER_SAVED)));
        let ts = self.pick_scratch(avoid, 3)?;
        let (t1, t2, t3) = (ts[0], ts[1], ts[2]);

        // Step A: t1 = &other_rsp.
        self.pop_value(t1, self.runtime.ss_addr, avoid);
        self.gadget(GadgetOp::AluLoad(AluOp::Add, t1, t1), avoid, false);
        // Reserve space for the fake return address on the native stack.
        self.pop_value(t2, 8, avoid);
        self.gadget(GadgetOp::AluStore(AluOp::Sub, t1, t2), avoid, false);
        // Step B: write the function-return gadget's address there.
        self.gadget(GadgetOp::Load(t2, t1), avoid, false);
        self.pop_value(t3, self.runtime.func_ret_gadget, avoid);
        self.gadget(GadgetOp::Store(t2, t3), avoid, false);
        // Step C: load the callee address and switch stacks.
        self.pop_value(t2, callee, avoid);
        self.gadget(GadgetOp::XchgRspMemJmp(t1, t2), avoid, false);
        Ok(())
    }
}
