//! Stable structural hashing for configuration values.
//!
//! The artifact store in `raindrop-server` keys protection results by
//! `(source hash, config hash, seed)`, so the config hash must be *stable*:
//! independent of struct field declaration order, serialization framework
//! quirks, and pointer identity — two configurations that mean the same
//! thing must hash the same today and after a refactor reorders fields.
//!
//! The scheme is a canonical *field bag*: every config renders its fields
//! into a [`FieldBag`] as `(name, canonical value)` pairs, the bag sorts
//! the pairs by name, and the sorted rendering feeds an FNV-1a 128-bit
//! hash. Reordering `put` calls therefore cannot change the digest (pinned
//! by `field_order_does_not_change_the_hash`), while renaming or retyping a
//! field — a genuine semantic change — does.
//!
//! Floats are canonicalized through their IEEE bit pattern, so `0.25`
//! hashes identically on every platform and NaN payload differences are
//! visible rather than collapsed.

/// FNV-1a over 128 bits: tiny, dependency-free, and wide enough that the
/// artifact store can treat digest equality as identity.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher { state: FNV128_OFFSET }
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Hashes a byte string in one call.
pub fn stable_hash_bytes(bytes: &[u8]) -> u128 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// A canonical bag of named fields. Fields may be added in any order; the
/// digest is computed over the name-sorted rendering.
#[derive(Debug, Clone, Default)]
pub struct FieldBag {
    fields: Vec<(&'static str, String)>,
}

impl FieldBag {
    /// An empty bag.
    pub fn new() -> FieldBag {
        FieldBag::default()
    }

    fn put(&mut self, name: &'static str, value: String) -> &mut Self {
        self.fields.push((name, value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn put_u64(&mut self, name: &'static str, v: u64) -> &mut Self {
        self.put(name, format!("u{v}"))
    }

    /// Adds a boolean field.
    pub fn put_bool(&mut self, name: &'static str, v: bool) -> &mut Self {
        self.put(name, format!("b{v}"))
    }

    /// Adds a float field, canonicalized through its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, name: &'static str, v: f64) -> &mut Self {
        self.put(name, format!("f{:016x}", v.to_bits()))
    }

    /// Adds a string field (length-prefixed so adjacent fields cannot blend
    /// into each other).
    pub fn put_str(&mut self, name: &'static str, v: &str) -> &mut Self {
        self.put(name, format!("s{}:{v}", v.len()))
    }

    /// Adds a nested bag (canonicalized recursively).
    pub fn put_bag(&mut self, name: &'static str, bag: &FieldBag) -> &mut Self {
        self.put(name, format!("{{{}}}", bag.canonical()))
    }

    /// Adds an optional nested bag; `None` renders distinctly from any
    /// `Some` value.
    pub fn put_opt_bag(&mut self, name: &'static str, bag: Option<&FieldBag>) -> &mut Self {
        match bag {
            Some(b) => self.put_bag(name, b),
            None => self.put(name, "none".to_string()),
        }
    }

    /// The canonical rendering: `name=value` pairs sorted by name, joined
    /// with `;`.
    pub fn canonical(&self) -> String {
        let mut fields = self.fields.clone();
        fields.sort();
        let parts: Vec<String> = fields.iter().map(|(n, v)| format!("{n}={v}")).collect();
        parts.join(";")
    }

    /// The 128-bit digest of the canonical rendering.
    pub fn digest(&self) -> u128 {
        stable_hash_bytes(self.canonical().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_does_not_change_the_hash() {
        // The store key's correctness anchor: the same logical
        // configuration rendered with its fields in two different orders
        // (as a struct-field reordering would produce) digests identically.
        let mut declared = FieldBag::new();
        declared
            .put_f64("p3_fraction", 0.25)
            .put_bool("p2", true)
            .put_u64("max_rop_depth", 1024)
            .put_str("variant", "Mixed");
        let mut reordered = FieldBag::new();
        reordered
            .put_str("variant", "Mixed")
            .put_u64("max_rop_depth", 1024)
            .put_f64("p3_fraction", 0.25)
            .put_bool("p2", true);
        assert_eq!(declared.canonical(), reordered.canonical());
        assert_eq!(declared.digest(), reordered.digest());
    }

    #[test]
    fn value_changes_do_change_the_hash() {
        let digest = |k: f64, p2: bool| {
            let mut b = FieldBag::new();
            b.put_f64("p3_fraction", k).put_bool("p2", p2);
            b.digest()
        };
        assert_ne!(digest(0.25, true), digest(0.5, true));
        assert_ne!(digest(0.25, true), digest(0.25, false));
    }

    #[test]
    fn nested_and_missing_bags_are_distinct() {
        let mut inner = FieldBag::new();
        inner.put_u64("n", 4);
        let mut with = FieldBag::new();
        with.put_opt_bag("p1", Some(&inner));
        let mut without = FieldBag::new();
        without.put_opt_bag("p1", None);
        assert_ne!(with.digest(), without.digest());
    }

    #[test]
    fn digest_is_pinned() {
        // Guards the canonical format itself: accidentally changing the
        // rendering would silently invalidate every stored artifact key.
        let mut b = FieldBag::new();
        b.put_u64("a", 1).put_bool("b", false).put_f64("c", 1.5).put_str("d", "x");
        assert_eq!(b.canonical(), "a=u1;b=bfalse;c=f3ff8000000000000;d=s1:x");
        assert_eq!(b.digest(), 0x19a8_619e_b738_c20c_6707_8bbe_4079_f2ec_u128);
    }

    #[test]
    fn strings_cannot_blend_across_fields() {
        let mut a = FieldBag::new();
        a.put_str("x", "ab").put_str("y", "c");
        let mut b = FieldBag::new();
        b.put_str("x", "a").put_str("y", "bc");
        assert_ne!(a.digest(), b.digest());
    }
}
