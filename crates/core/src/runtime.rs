//! The ROP runtime: stack-switching array, pivot stubs and the
//! function-return gadget (§IV-A3, §IV-B and Appendix A of the paper).
//!
//! Rewritten functions keep the original program's *native* stack behaviour:
//! the chain lives in `.data` and a per-image stack-switching array `ss`
//! mediates every transition between the ROP domain and the native domain.
//! `ss[0]` holds the byte offset of the slot of the innermost active ROP
//! call, so the current `other_rsp` is always `*(ss + *ss)`; this supports
//! recursion and arbitrary interleavings of ROP and native calls.

use crate::config::RopConfig;
use raindrop_machine::{encode_all, AluOp, Image, Inst, Mem, Reg};

/// Symbol name of the stack-switching array.
pub const SS_SYMBOL: &str = "__rop_ss";
/// Symbol name of the spill-slot area.
pub const SPILL_SYMBOL: &str = "__rop_spill";
/// Symbol name of the function-return gadget.
pub const FUNC_RET_SYMBOL: &str = "__rop_func_ret";

/// Per-image runtime support installed once before rewriting any function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RopRuntime {
    /// Address of the stack-switching array `ss`.
    pub ss_addr: u64,
    /// Address of the spill-slot area used by the register allocator.
    pub spill_addr: u64,
    /// Number of spill slots available.
    pub spill_slots: usize,
    /// Address of the function-return gadget used to resume a chain after a
    /// native call returns.
    pub func_ret_gadget: u64,
}

impl RopRuntime {
    /// Installs the runtime into the image (idempotent: reuses the existing
    /// symbols when already present).
    pub fn install(image: &mut Image, config: &RopConfig) -> RopRuntime {
        let ss_addr = match image.symbol(SS_SYMBOL) {
            Ok(a) => a,
            Err(_) => {
                let size = (config.max_rop_depth + 1) * 8;
                image.append_data(Some(SS_SYMBOL), &vec![0u8; size])
            }
        };
        let spill_addr = match image.symbol(SPILL_SYMBOL) {
            Ok(a) => a,
            Err(_) => {
                image.append_data(Some(SPILL_SYMBOL), &vec![0u8; config.spill_slots.max(1) * 8])
            }
        };
        let func_ret_gadget = match image.symbol(FUNC_RET_SYMBOL) {
            Ok(a) => a,
            Err(_) => {
                let bytes = func_ret_gadget_bytes(ss_addr);
                image.append_text(Some(FUNC_RET_SYMBOL), &bytes)
            }
        };
        RopRuntime { ss_addr, spill_addr, spill_slots: config.spill_slots.max(1), func_ret_gadget }
    }

    /// Address of spill slot `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the configured spill area.
    pub fn spill_slot(&self, i: usize) -> u64 {
        assert!(i < self.spill_slots, "spill slot {i} out of range");
        self.spill_addr + (i as u64) * 8
    }

    /// The native pivot stub that replaces a rewritten function's body
    /// (Appendix A, "From Native to ROP and Back"). It:
    ///
    /// 1. reserves a new `other_rsp` entry in `ss`,
    /// 2. saves the native `rsp` there,
    /// 3. loads the chain address into `rsp` and `ret`s into the first
    ///    gadget.
    ///
    /// Only the caller-saved scratch registers `r11` and `r10` are clobbered.
    pub fn pivot_stub(&self, chain_addr: u64) -> Vec<u8> {
        encode_all(&pivot_stub_insts(self.ss_addr, chain_addr))
    }

    /// Size in bytes of the pivot stub (functions shorter than this cannot
    /// be rewritten in place, mirroring the 22-byte threshold of the paper).
    pub fn pivot_stub_len() -> u64 {
        encode_all(&pivot_stub_insts(0, 0)).len() as u64
    }
}

fn pivot_stub_insts(ss_addr: u64, chain_addr: u64) -> Vec<Inst> {
    vec![
        // r11 = &ss
        Inst::MovRI(Reg::R11, ss_addr as i64),
        // ss[0] += 8  (reserve the new other_rsp slot)
        Inst::MovRI(Reg::R10, 8),
        Inst::AluStore(AluOp::Add, Mem::base(Reg::R11), Reg::R10),
        // r11 = ss + ss[0]  (address of the new slot)
        Inst::AluM(AluOp::Add, Reg::R11, Mem::base(Reg::R11)),
        // *r11 = rsp  (save the native stack pointer as other_rsp)
        Inst::Store(Mem::base(Reg::R11), Reg::Rsp),
        // rsp = chain; ret pops the first gadget address
        Inst::MovRI(Reg::Rsp, chain_addr as i64),
        Inst::Ret,
    ]
}

/// The function-return gadget: a synthetic gadget with the `ss` address
/// hard-wired, installed once per image. A native callee returns *to* this
/// gadget; it swaps `rsp` and `other_rsp` again so the chain resumes.
fn func_ret_gadget_bytes(ss_addr: u64) -> Vec<u8> {
    encode_all(&[
        Inst::MovRI(Reg::R11, ss_addr as i64),
        Inst::AluM(AluOp::Add, Reg::R11, Mem::base(Reg::R11)),
        Inst::XchgRM(Reg::Rsp, Mem::base(Reg::R11)),
        Inst::Ret,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::{Assembler, Emulator, ImageBuilder, RunExit, STACK_TOP};

    fn base_image() -> Image {
        let mut a = Assembler::new();
        a.inst(Inst::MovRI(Reg::Rax, 1)).inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("f", a);
        b.build().unwrap()
    }

    #[test]
    fn install_is_idempotent() {
        let mut img = base_image();
        let cfg = RopConfig::default();
        let rt1 = RopRuntime::install(&mut img, &cfg);
        let size_after_first = img.size();
        let rt2 = RopRuntime::install(&mut img, &cfg);
        assert_eq!(rt1, rt2);
        assert_eq!(img.size(), size_after_first, "second install adds nothing");
        assert!(img.in_data(rt1.ss_addr));
        assert!(img.in_text(rt1.func_ret_gadget));
    }

    #[test]
    fn spill_slots_are_consecutive() {
        let mut img = base_image();
        let cfg = RopConfig { spill_slots: 3, ..RopConfig::default() };
        let rt = RopRuntime::install(&mut img, &cfg);
        assert_eq!(rt.spill_slot(1), rt.spill_slot(0) + 8);
        assert_eq!(rt.spill_slot(2), rt.spill_slot(0) + 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_spill_slot_panics() {
        let mut img = base_image();
        let rt = RopRuntime::install(&mut img, &RopConfig::default());
        let _ = rt.spill_slot(99);
    }

    #[test]
    fn pivot_stub_enters_a_chain_and_func_ret_gadget_resumes_native_flow() {
        // Build a minimal hand-made chain: [pop rax][42][unpivot...] and
        // check that calling the stub returns 42 with a balanced ss array.
        let mut img = base_image();
        let rt = RopRuntime::install(&mut img, &RopConfig::default());

        // Gadgets needed by the chain.
        let pop_rax = img.append_text(None, &encode_all(&[Inst::Pop(Reg::Rax), Inst::Ret]));
        let pop_r11 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R11), Inst::Ret]));
        let pop_r10 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R10), Inst::Ret]));
        let sub_store = img.append_text(
            None,
            &encode_all(&[Inst::AluStore(AluOp::Sub, Mem::base(Reg::R11), Reg::R10), Inst::Ret]),
        );
        let add_load = img.append_text(
            None,
            &encode_all(&[Inst::AluM(AluOp::Add, Reg::R11, Mem::base(Reg::R11)), Inst::Ret]),
        );
        let add_r11_r10 = img.append_text(
            None,
            &encode_all(&[Inst::Alu(AluOp::Add, Reg::R11, Reg::R10), Inst::Ret]),
        );
        let load_rsp = img.append_text(
            None,
            &encode_all(&[Inst::Load(Reg::Rsp, Mem::base(Reg::R11)), Inst::Ret]),
        );

        // Chain: pop rax, 42 = return value; then the unpivot sequence of
        // Appendix A: ss[0] -= 8; r11 = ss + ss[0] + 8; rsp = [r11]; ret.
        let mut chain = Vec::new();
        for v in [
            pop_rax,
            42,
            pop_r11,
            rt.ss_addr,
            pop_r10,
            8,
            sub_store,
            add_load,
            add_r11_r10,
            load_rsp,
        ] {
            chain.extend_from_slice(&v.to_le_bytes());
        }
        let chain_addr = img.append_data(Some("chain_f"), &chain);

        // Replace f's body with the pivot stub.
        let stub = rt.pivot_stub(chain_addr);
        let f_addr = img.function("f").unwrap().addr;
        // f is too small to hold the stub in place, so append a new entry
        // point instead (the rewriter proper checks sizes; this test only
        // exercises the runtime protocol).
        let entry = img.append_text(Some("f_rop"), &stub);

        let mut emu = Emulator::new(&img);
        let _ = f_addr;
        let ret = emu.call(entry, &[]).unwrap();
        assert_eq!(ret, 42);
        assert_eq!(emu.mem.read_u64(rt.ss_addr), 0, "ss count balanced after return");
        assert_eq!(emu.reg(Reg::Rsp), STACK_TOP, "native stack pointer restored");
    }

    #[test]
    fn func_ret_gadget_swaps_stacks() {
        // Simulate the state right after a native callee returned into the
        // function-return gadget: ss[0] = 8, ss[1] = chain resumption point.
        let mut img = base_image();
        let rt = RopRuntime::install(&mut img, &RopConfig::default());
        let pop_rax = img.append_text(None, &encode_all(&[Inst::Pop(Reg::Rax), Inst::Ret]));
        let hlt = img.append_text(None, &encode_all(&[Inst::Hlt]));
        let mut chain = Vec::new();
        for v in [pop_rax, 7u64, hlt] {
            chain.extend_from_slice(&v.to_le_bytes());
        }
        let chain_addr = img.append_data(None, &chain);

        let mut emu = Emulator::new(&img);
        emu.mem.write_u64(rt.ss_addr, 8);
        emu.mem.write_u64(rt.ss_addr + 8, chain_addr);
        // Native stack: pretend we are a callee about to return into the
        // function-return gadget.
        let sp = STACK_TOP - 64;
        emu.set_reg(Reg::Rsp, sp);
        emu.mem.write_u64(sp, rt.func_ret_gadget);
        emu.cpu.rip = img.symbol(FUNC_RET_SYMBOL).unwrap();
        // Execute the gadget directly (skip the ret that would lead here).
        let exit = emu.run().unwrap();
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(emu.reg(Reg::Rax), 7, "chain resumed and popped its slot");
        assert_eq!(emu.mem.read_u64(rt.ss_addr + 8), sp, "other_rsp now holds the native rsp");
    }
}
