//! The end-to-end ROP rewriter (Fig. 2 of the paper).
//!
//! `Rewriter` owns the per-image state shared by every rewritten function
//! (gadget catalog, stack-switching runtime) and runs the full pipeline per
//! function: CFG reconstruction → liveness / input-derived analysis →
//! translation + chain crafting → materialization.

use crate::config::RopConfig;
use crate::craft::{CraftStats, Crafter};
use crate::error::RewriteError;
use crate::materialize::{MaterializeCtx, Materialized};
use crate::runtime::RopRuntime;
use raindrop_analysis::{cfg, dataflow, liveness};
use raindrop_gadgets::{GadgetCatalog, GadgetStats};
use raindrop_machine::{Image, Reg, RegSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-function rewriting report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewriteReport {
    /// Function name.
    pub name: String,
    /// Program points (original instructions) translated.
    pub program_points: u64,
    /// Crafting statistics (P2/P3/confusion sites, gadget slots, branches).
    pub stats: CraftStats,
    /// Address of the chain in `.data`.
    pub chain_addr: u64,
    /// Size of the chain in bytes.
    pub chain_len: usize,
    /// Number of basic blocks in the reconstructed CFG.
    pub blocks: usize,
    /// The symbolic chain that was materialized at
    /// [`chain_addr`](RewriteReport::chain_addr). Retained so the static
    /// audit ([`crate::verify::audit_rop_function`]) can re-resolve it and
    /// prove the emitted bytes well-formed without any emulation.
    pub chain: crate::chain::Chain,
}

/// Aggregate report over a whole image (deployability experiment §VII-C1 and
/// Table III statistics).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImageReport {
    /// Successfully rewritten functions.
    pub rewritten: Vec<RewriteReport>,
    /// Failures with their classified reason.
    pub failures: Vec<(String, String)>,
    /// Gadget-pool statistics after rewriting (columns A/B of Table III).
    pub gadgets: GadgetStats,
}

impl ImageReport {
    /// Fraction of attempted functions successfully rewritten.
    pub fn coverage(&self) -> f64 {
        let total = self.rewritten.len() + self.failures.len();
        if total == 0 {
            return 1.0;
        }
        self.rewritten.len() as f64 / total as f64
    }

    /// Total number of program points across rewritten functions (column N).
    pub fn program_points(&self) -> u64 {
        self.rewritten.iter().map(|r| r.program_points).sum()
    }
}

/// Per-image state installed into the image on the first rewrite: the
/// stack-switching runtime and the gadget catalog seeded from the gadgets
/// already present in unobfuscated code.
struct Attached {
    runtime: RopRuntime,
    catalog: GadgetCatalog,
}

/// The ROP rewriter.
///
/// A `Rewriter` owns configuration and per-image rewriting state (runtime,
/// gadget catalog, reusable materialization buffers) but never borrows the
/// image itself: every method takes the image exactly once. The runtime and
/// catalog are installed lazily on the first `rewrite_*` call, so a rewriter
/// must only ever be used with a single image.
pub struct Rewriter {
    config: RopConfig,
    attached: Option<Attached>,
    rewritten: BTreeSet<String>,
    mat: MaterializeCtx,
}

impl Rewriter {
    /// Creates a rewriter with the given configuration. The stack-switching
    /// runtime is installed (and the gadget catalog seeded) into the image
    /// passed to the first `rewrite_*` call.
    pub fn new(config: RopConfig) -> Rewriter {
        Rewriter { config, attached: None, rewritten: BTreeSet::new(), mat: MaterializeCtx::new() }
    }

    /// Installs the runtime and seeds the catalog on first use.
    ///
    /// # Panics
    ///
    /// Panics when the rewriter is already attached and `image` does not
    /// carry the installed runtime (i.e. a second, different image was
    /// passed): the catalog and runtime addresses would be meaningless
    /// there and the rewrite would corrupt it silently.
    fn attach(&mut self, image: &mut Image) {
        match &self.attached {
            None => {
                let runtime = RopRuntime::install(image, &self.config);
                let catalog = GadgetCatalog::from_image(image, self.config.catalog);
                self.attached = Some(Attached { runtime, catalog });
            }
            Some(att) => {
                assert_eq!(
                    image.symbol(crate::runtime::SS_SYMBOL).ok(),
                    Some(att.runtime.ss_addr),
                    "Rewriter is attached to a different image; use one Rewriter per image"
                );
            }
        }
    }

    /// The configuration the rewriter was created with.
    pub fn config(&self) -> &RopConfig {
        &self.config
    }

    /// Seeds the rewriter with an existing warm [`MaterializeCtx`], so its
    /// materialization buffers are reused instead of reallocated. Output is
    /// bit-identical to a fresh context; only allocation churn changes.
    pub fn with_mat_ctx(mut self, ctx: MaterializeCtx) -> Rewriter {
        self.mat = ctx;
        self
    }

    /// Takes the materialization buffers back out of the rewriter (leaving
    /// a fresh default context behind), so a caller that owns warm state —
    /// e.g. a protection-server worker — can carry them to the next
    /// rewriter.
    pub fn take_mat_ctx(&mut self) -> MaterializeCtx {
        std::mem::take(&mut self.mat)
    }

    /// The runtime installed into the image, once a `rewrite_*` call has
    /// attached the rewriter to one.
    pub fn runtime(&self) -> Option<&RopRuntime> {
        self.attached.as_ref().map(|a| &a.runtime)
    }

    /// Gadget-pool statistics accumulated so far (zero before the first
    /// rewrite attaches the catalog).
    pub fn gadget_stats(&self) -> GadgetStats {
        self.attached.as_ref().map(|a| a.catalog.stats()).unwrap_or_default()
    }

    /// Rewrites a single function into a self-contained ROP chain.
    ///
    /// # Errors
    ///
    /// Returns a [`RewriteError`] describing why the function could not be
    /// rewritten; the image is left with whatever gadgets/data were appended
    /// but the function body itself is only replaced on success.
    pub fn rewrite_function(
        &mut self,
        image: &mut Image,
        name: &str,
    ) -> Result<RewriteReport, RewriteError> {
        if self.rewritten.contains(name) {
            return Err(RewriteError::AlreadyRewritten { name: name.to_string() });
        }
        self.attach(image);
        // Size gate first: mirrors the paper's decision to skip functions
        // shorter than the pivoting sequence.
        let func = image.function(name)?.clone();
        let stub_len = RopRuntime::pivot_stub_len();
        if func.size < stub_len {
            return Err(RewriteError::FunctionTooShort { size: func.size, needed: stub_len });
        }

        let att = self.attached.as_mut().expect("attached above");
        let runtime = att.runtime;

        // Gadgets scanned from inside this function must never be used: the
        // materialization step replaces the body with the pivot stub plus
        // `hlt` filler, which would destroy them. The pool is limited to
        // artificial gadgets and gadgets from parts left unobfuscated
        // (§IV-A1).
        att.catalog.retire_range(func.addr, func.addr + func.size);

        let graph = cfg::reconstruct(image, name)?;
        let live = liveness::analyze(&graph);
        let derived = dataflow::input_derived(&graph, RegSet::from_regs(Reg::ARGS));

        // Derive a per-function seed so each function gets independent (but
        // reproducible) obfuscation-time choices.
        let seed = self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(func.addr);

        let crafter = Crafter::new(
            image,
            &mut att.catalog,
            &runtime,
            &self.config,
            &graph,
            &live,
            &derived,
            seed,
        );
        let (chain, stats, _p1) = crafter.craft()?;
        let materialized: Materialized = self.mat.materialize(image, &runtime, name, &chain)?;

        self.rewritten.insert(name.to_string());
        Ok(RewriteReport {
            name: name.to_string(),
            program_points: stats.program_points,
            stats,
            chain_addr: materialized.chain_addr,
            chain_len: materialized.chain_len,
            blocks: graph.len(),
            chain,
        })
    }

    /// Rewrites every function in `names`, collecting successes and failures
    /// (the deployability experiment of §VII-C1).
    pub fn rewrite_functions<'n, I: IntoIterator<Item = &'n str>>(
        &mut self,
        image: &mut Image,
        names: I,
    ) -> ImageReport {
        let names: Vec<&str> = names.into_iter().collect();
        self.attach(image);
        // Retire the gadgets living inside *any* function scheduled for
        // rewriting up front, so a chain crafted early never references a
        // gadget destroyed when a later function's body is replaced.
        let att = self.attached.as_mut().expect("attached above");
        for name in &names {
            if let Ok(f) = image.function(name) {
                let (addr, size) = (f.addr, f.size);
                att.catalog.retire_range(addr, addr + size);
            }
        }
        let mut report = ImageReport::default();
        for name in names {
            match self.rewrite_function(image, name) {
                Ok(r) => report.rewritten.push(r),
                Err(e) => report.failures.push((name.to_string(), format!("{e}"))),
            }
        }
        report.gadgets = self.gadget_stats();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::{AluOp, Assembler, Cond, Emulator, Inst, Mem, Reg};

    /// Builds an image with a compiler-shaped function computing
    /// `f(a, b) = a > b ? (a - b) * 3 : (b - a) + 7`, with a stack frame.
    fn sample_image() -> Image {
        let mut a = Assembler::new();
        let else_l = a.new_label();
        let join = a.new_label();
        a.inst(Inst::Push(Reg::Rbp));
        a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
        a.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16));
        a.inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi));
        a.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi));
        a.jcc(Cond::Be, else_l);
        a.inst(Inst::Load(Reg::Rax, Mem::base_disp(Reg::Rbp, -8)));
        a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rsi));
        a.inst(Inst::MulI(Reg::Rax, Reg::Rax, 3));
        a.jmp(join);
        a.bind(else_l);
        a.inst(Inst::MovRR(Reg::Rax, Reg::Rsi));
        a.inst(Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rdi));
        a.inst(Inst::AluI(AluOp::Add, Reg::Rax, 7));
        a.bind(join);
        a.inst(Inst::Leave);
        a.inst(Inst::Ret);
        let mut b = raindrop_machine::ImageBuilder::new();
        b.add_function("f", a);
        b.build().unwrap()
    }

    fn reference(a: u64, b: u64) -> u64 {
        if a > b {
            (a - b) * 3
        } else {
            (b - a) + 7
        }
    }

    fn check_equivalence(config: RopConfig) {
        let original = sample_image();
        let mut obf = original.clone();
        let mut rewriter = Rewriter::new(config);
        let report = rewriter.rewrite_function(&mut obf, "f").expect("rewrite succeeds");
        assert!(report.program_points > 0);
        assert!(report.chain_len > 0);

        for (a, b) in [(10u64, 3u64), (3, 10), (5, 5), (0, 0), (1000, 999), (7, 123)] {
            let mut emu_orig = Emulator::new(&original);
            let expected = emu_orig.call_named(&original, "f", &[a, b]).unwrap();
            assert_eq!(expected, reference(a, b));
            let mut emu_obf = Emulator::new(&obf);
            let got = emu_obf.call_named(&obf, "f", &[a, b]).unwrap();
            assert_eq!(got, expected, "f({a}, {b}) under {:?}", rewriter.config().p1);
        }
    }

    #[test]
    fn plain_rop_rewrite_preserves_semantics() {
        check_equivalence(RopConfig::plain());
    }

    #[test]
    fn p1_rewrite_preserves_semantics() {
        check_equivalence(RopConfig::ropk(0.0));
    }

    #[test]
    fn full_strength_rewrite_preserves_semantics() {
        check_equivalence(RopConfig::full());
    }

    #[test]
    fn rewriting_twice_is_rejected() {
        let mut img = sample_image();
        let mut rw = Rewriter::new(RopConfig::plain());
        rw.rewrite_function(&mut img, "f").unwrap();
        assert!(matches!(
            rw.rewrite_function(&mut img, "f"),
            Err(RewriteError::AlreadyRewritten { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "different image")]
    fn reusing_a_rewriter_across_images_panics() {
        let mut first = sample_image();
        let mut second = sample_image();
        let mut rw = Rewriter::new(RopConfig::plain());
        rw.rewrite_function(&mut first, "f").unwrap();
        // `second` never saw the runtime install; the attach check must
        // refuse to treat it as the attached image.
        let _ = rw.rewrite_functions(&mut second, ["f"]);
    }

    #[test]
    fn image_report_aggregates_coverage() {
        let mut img = sample_image();
        let mut rw = Rewriter::new(RopConfig::plain());
        let report = rw.rewrite_functions(&mut img, ["f", "missing"]);
        assert_eq!(report.rewritten.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert!((report.coverage() - 0.5).abs() < 1e-9);
        assert!(report.program_points() > 0);
        assert!(report.gadgets.total_used > 0);
        assert!(report.gadgets.unique_used <= report.gadgets.total_used);
    }
}
