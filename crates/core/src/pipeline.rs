//! The composable obfuscation pipeline: one builder API for ROP rewriting,
//! VM layering, materialization and differential verification.
//!
//! The paper's experiments are all *compositions* — `ROPk` rewriting, `nVM`
//! interpreter stacks, and mixtures of the two — but each building block
//! lives at a different level: VM virtualization transforms MiniC source,
//! ROP rewriting transforms the compiled image. A [`Pipeline`] accepts any
//! sequence of [`ObfPass`]es in *nesting order* (the first pass is the
//! innermost protection layer), plans where each one runs, compiles the
//! program at the source→image boundary, threads one RNG seed through every
//! pass, and differentially verifies the result against the unobfuscated
//! baseline through [`verify_batch`].
//!
//! Cross-level orders compose too:
//!
//! * **ROP over VM** (`VmPass` then `RopPass`): the function is virtualized
//!   first and the generated interpreter is then rewritten into a ROP chain.
//! * **VM over ROP** (`RopPass` then `VmPass`): the pipeline splits the
//!   target — the original body moves to an inner function
//!   ([`rop_inner_name`]) that the ROP pass rewrites in the image, while a
//!   wrapper with the public name forwards to it and is what the VM pass
//!   virtualizes. The VM interpreter then dispatches into the ROP chain.
//!
//! # Example
//!
//! ```
//! use raindrop::pipeline::{Pipeline, RopPass, VerifyPolicy, VmPass};
//! use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};
//!
//! # fn main() -> Result<(), raindrop::PipelineError> {
//! // f(x) = 3*x + 1, as MiniC source.
//! let program = Program::new().with_function(Function {
//!     name: "f".into(),
//!     params: 1,
//!     locals: 0,
//!     body: vec![Stmt::Return(Expr::bin(
//!         BinOp::Add,
//!         Expr::bin(BinOp::Mul, Expr::c(3), Expr::Arg(0)),
//!         Expr::c(1),
//!     ))],
//! });
//!
//! // ROP over VM: virtualize f, then ROP-rewrite the interpreter.
//! let run = Pipeline::new()
//!     .pass(VmPass::plain(1))
//!     .pass(RopPass::full())
//!     .seed(7)
//!     .verify(VerifyPolicy::Batch)
//!     .run_program(&program, &["f"])?;
//!
//! assert!(run.report.failures.is_empty());
//! assert!(run.report.all_verified(), "pipeline output matches the baseline");
//! let mut emu = raindrop_machine::Emulator::new(&run.image);
//! assert_eq!(emu.call_named(&run.image, "f", &[5]).unwrap(), 16);
//! # Ok(())
//! # }
//! ```

use crate::config::{P3Variant, RopConfig};
use crate::lint::{lint_program, RewriteLint};
use crate::materialize::MaterializeCtx;
use crate::rewriter::{ImageReport, Rewriter};
use crate::stable::{FieldBag, StableHasher};
use crate::verify::{
    audit_rop_image, audit_symbols, audit_vm_code, verify_batch, StaticDiagnostic, TestCase,
    Verdict,
};
use raindrop_machine::{AsmError, Image};
use raindrop_obfvm::{ImplicitAt, VmConfig};
use raindrop_synth::codegen;
use raindrop_synth::minic::{Expr, Function, Program, Stmt};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Which lowering level a pass transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Transforms the MiniC [`Program`] before compilation.
    Source,
    /// Transforms the compiled [`Image`].
    Image,
}

/// Errors that abort a whole pipeline run (per-target obfuscation failures
/// are collected in [`ObfReport::failures`] instead).
#[derive(Debug)]
pub enum PipelineError {
    /// A requested target function does not exist in the input.
    UnknownTarget(String),
    /// The same target function was requested twice (the wrapper split
    /// would produce colliding inner names).
    DuplicateTarget(String),
    /// A source-level pass was scheduled on an image-only input
    /// ([`Pipeline::run_image`] cannot go back to source).
    SourcePassOnImage {
        /// Label of the offending pass.
        pass: String,
    },
    /// A pass was invoked at a stage it does not implement.
    WrongStage {
        /// Label of the offending pass.
        pass: String,
    },
    /// Compiling the (transformed) program failed.
    Codegen(AsmError),
    /// Strict-mode summary of a per-target failure (see
    /// [`PipelineRun::into_strict`]).
    TargetFailed {
        /// The public name of the function that failed.
        function: String,
        /// The recorded failure reason.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnknownTarget(n) => write!(f, "unknown target function `{n}`"),
            PipelineError::DuplicateTarget(n) => {
                write!(f, "target function `{n}` was requested more than once")
            }
            PipelineError::SourcePassOnImage { pass } => {
                write!(f, "source-level pass `{pass}` cannot run on an image-only input")
            }
            PipelineError::WrongStage { pass } => {
                write!(f, "pass `{pass}` invoked at a stage it does not implement")
            }
            PipelineError::Codegen(e) => write!(f, "code generation failed: {e}"),
            PipelineError::TargetFailed { function, reason } => {
                write!(f, "obfuscating `{function}` failed: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Context handed to [`ObfPass::run_source`].
pub struct SourceCtx<'a> {
    /// The pipeline seed, if one was set with [`Pipeline::seed`].
    pub seed: Option<u64>,
    /// Public names of the functions this pass must transform.
    pub targets: &'a [String],
    /// Virtualization layers already applied per public target name; a
    /// virtualizing pass must read its base layer from here and bump it, so
    /// stacked VM passes never collide on per-layer symbols.
    pub vm_layers: &'a mut BTreeMap<String, usize>,
    /// Per-target failures (target name, reason). Recording a failure drops
    /// the target from all subsequent passes.
    pub failures: &'a mut Vec<(String, String)>,
}

/// Context handed to [`ObfPass::run_image`].
pub struct ImageCtx<'a> {
    /// The pipeline seed, if one was set with [`Pipeline::seed`].
    pub seed: Option<u64>,
    /// Names of the functions this pass must transform in the image. These
    /// are *stage names*: when the pipeline split a target for a later
    /// source pass, the inner ([`rop_inner_name`]) function appears here.
    pub targets: &'a [String],
    /// Per-target failures (stage name, reason).
    pub failures: &'a mut Vec<(String, String)>,
    /// Warm materialization buffers shared across passes and — through
    /// [`Pipeline::run_program_with`] — across whole pipeline runs. Passes
    /// that materialize chains should route through this instead of
    /// allocating fresh scratch; reuse never changes output bytes.
    pub mat: &'a mut MaterializeCtx,
}

/// Reusable scratch state threaded through pipeline runs.
///
/// A `PipelineWarm` owns the allocation-heavy buffers a run needs (today:
/// the [`MaterializeCtx`] behind every ROP pass). One-shot callers never
/// see it — [`Pipeline::run_program`] creates a fresh one per run — but a
/// long-running service holds one per worker and passes it to
/// [`Pipeline::run_program_with`] so consecutive protection jobs reuse warm
/// buffers. Reuse is invisible in the output: runs with a warm state are
/// bit-identical to fresh runs (pinned by `warm_state_reuse_is_invisible`).
#[derive(Debug, Default)]
pub struct PipelineWarm {
    mat: MaterializeCtx,
}

impl PipelineWarm {
    /// Fresh (cold) scratch state.
    pub fn new() -> PipelineWarm {
        PipelineWarm::default()
    }
}

/// What a pass did, for the [`ObfReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum PassDetail {
    /// ROP rewriting: the full per-image report (per-function coverage,
    /// chain/materialize sizes, gadget statistics).
    Rop(ImageReport),
    /// VM virtualization: layers and per-function bytecode sizes.
    Vm(VmReport),
    /// A custom [`ObfPass`] implementation without structured statistics.
    Custom,
    /// The pass was skipped — either every one of its targets had already
    /// failed an earlier pass, or a per-pass restriction
    /// ([`Pipeline::only`]) excluded every target of this run. The image
    /// was left untouched by it.
    Skipped,
}

/// Statistics of one VM pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VmReport {
    /// Layers this pass applied.
    pub layers: usize,
    /// Per-function results: `(public name, bytecode bytes per layer,
    /// innermost first)`.
    pub functions: Vec<(String, Vec<usize>)>,
    /// The effective seed the pass virtualized with (drives each layer's
    /// opcode shuffle; the static audit re-derives the assignment from it).
    pub seed: u64,
    /// Snapshot of every bytecode blob the pass emitted, so the static
    /// audit can byte-compare and re-decode them in the final image.
    pub code: Vec<VmCode>,
}

/// One bytecode blob a [`VmPass`] emitted (see [`VmReport::code`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VmCode {
    /// Public name of the virtualized function.
    pub function: String,
    /// Absolute layer number (accounts for layers stacked by earlier
    /// passes).
    pub layer: usize,
    /// The blob's `.data` symbol (`__vm<layer>_<func>_code`).
    pub symbol: String,
    /// The bytecode bytes as compiled.
    pub bytes: Vec<u8>,
}

/// One entry of [`ObfReport::passes`].
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// The pass label ([`ObfPass::label`]).
    pub label: String,
    /// The stage the pass ran at.
    pub stage: Stage,
    /// Wall-clock time spent in the pass.
    pub wall: Duration,
    /// Structured statistics.
    pub detail: PassDetail,
}

impl PassReport {
    /// The ROP rewriting report, when this pass was a [`RopPass`].
    pub fn rop(&self) -> Option<&ImageReport> {
        match &self.detail {
            PassDetail::Rop(r) => Some(r),
            _ => None,
        }
    }

    /// The VM report, when this pass was a [`VmPass`].
    pub fn vm(&self) -> Option<&VmReport> {
        match &self.detail {
            PassDetail::Vm(r) => Some(r),
            _ => None,
        }
    }
}

/// Differential verification result for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOutcome {
    /// The public target name.
    pub function: String,
    /// Per-case verdicts, in case order.
    pub verdicts: Vec<Verdict>,
}

impl VerifyOutcome {
    /// Whether every case matched.
    pub fn all_match(&self) -> bool {
        self.verdicts.iter().all(Verdict::is_match)
    }
}

/// Static-audit findings of one pass (see [`Pipeline::static_audit`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEntry {
    /// The audited pass's label (or `"image"` for the whole-image symbol
    /// audit appended after the per-pass entries).
    pub pass: String,
    /// Diagnostics the audit raised (empty on a healthy image).
    pub diagnostics: Vec<StaticDiagnostic>,
}

/// The unified report of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObfReport {
    /// Per-pass reports, in declared (nesting) order.
    pub passes: Vec<PassReport>,
    /// Per-target failures, keyed by *public* target name. Targets listed
    /// here were skipped by later passes and excluded from verification.
    pub failures: Vec<(String, String)>,
    /// Differential verification outcomes (empty under
    /// [`VerifyPolicy::None`]).
    pub verify: Vec<VerifyOutcome>,
    /// Static-audit findings, one entry per pass plus a final `"image"`
    /// entry (populated under [`VerifyPolicy::Static`], empty otherwise).
    pub audit: Vec<AuditEntry>,
    /// Pre-flight source lints on the rewrite targets (populated under
    /// [`VerifyPolicy::Static`] when the input was a program). Lints are
    /// advisory — they predict per-target rewrite failures, they do not
    /// make [`ObfReport::audit_clean`] false.
    pub lints: Vec<RewriteLint>,
    /// Wall-clock time of the source→image compilation step (zero when the
    /// input was already an image).
    pub compile_wall: Duration,
    /// Wall-clock time of the verification step.
    pub verify_wall: Duration,
    /// Wall-clock time of the whole run.
    pub total_wall: Duration,
}

impl ObfReport {
    /// The ROP pass reports, in declared order.
    pub fn rop_passes(&self) -> Vec<&ImageReport> {
        self.passes.iter().filter_map(PassReport::rop).collect()
    }

    /// Whether verification ran and every target matched on every case.
    pub fn all_verified(&self) -> bool {
        !self.verify.is_empty() && self.verify.iter().all(VerifyOutcome::all_match)
    }

    /// Whether the static audit ran and raised no diagnostic.
    pub fn audit_clean(&self) -> bool {
        !self.audit.is_empty() && self.audit.iter().all(|e| e.diagnostics.is_empty())
    }

    /// Every static-audit diagnostic, across all passes.
    pub fn audit_diagnostics(&self) -> impl Iterator<Item = &StaticDiagnostic> {
        self.audit.iter().flat_map(|e| e.diagnostics.iter())
    }
}

/// Result of a pipeline run: the obfuscated image plus the unified report.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// The final (obfuscated) image.
    pub image: Image,
    /// The unified report.
    pub report: ObfReport,
}

impl PipelineRun {
    /// Strict-mode accessor: the final image, or the first per-target
    /// failure promoted to a [`PipelineError::TargetFailed`].
    ///
    /// # Errors
    ///
    /// Fails when any target failed in any pass.
    pub fn into_strict(self) -> Result<(Image, ObfReport), PipelineError> {
        if let Some((function, reason)) = self.report.failures.first() {
            return Err(PipelineError::TargetFailed {
                function: function.clone(),
                reason: reason.clone(),
            });
        }
        Ok((self.image, self.report))
    }
}

/// One obfuscating transformation, composable through [`Pipeline::pass`].
///
/// Implementations run at exactly one [`Stage`] and override the matching
/// `run_*` hook; the other hook's default returns
/// [`PipelineError::WrongStage`]. Per-target problems belong in the
/// context's `failures` list (the pipeline then drops the target from later
/// passes); returning `Err` aborts the whole run.
pub trait ObfPass {
    /// Human-readable pass label used in reports and error messages.
    fn label(&self) -> String;

    /// The stage this pass transforms.
    fn stage(&self) -> Stage;

    /// Transforms the MiniC program (source-stage passes).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::WrongStage`] unless overridden.
    fn run_source(
        &self,
        _program: &mut Program,
        _cx: &mut SourceCtx<'_>,
    ) -> Result<PassDetail, PipelineError> {
        Err(PipelineError::WrongStage { pass: self.label() })
    }

    /// Transforms the compiled image (image-stage passes).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::WrongStage`] unless overridden.
    fn run_image(
        &self,
        _image: &mut Image,
        _cx: &mut ImageCtx<'_>,
    ) -> Result<PassDetail, PipelineError> {
        Err(PipelineError::WrongStage { pass: self.label() })
    }

    /// Statically audits what this pass emitted into the final `image`,
    /// given the [`PassDetail`] its `run_*` hook returned. Runs under
    /// [`VerifyPolicy::Static`] (and via [`Pipeline::static_audit`]); the
    /// default has nothing to check.
    fn static_audit(&self, _image: &Image, _detail: &PassDetail) -> Vec<StaticDiagnostic> {
        Vec::new()
    }
}

/// ROP rewriting as a pipeline pass (wraps [`Rewriter`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RopPass {
    config: RopConfig,
    explicit_seed: bool,
}

impl RopPass {
    /// A pass with an explicit configuration; its seed is *not* overridden
    /// by [`Pipeline::seed`].
    pub fn new(config: RopConfig) -> RopPass {
        RopPass { config, explicit_seed: true }
    }

    /// The `ROPk` configuration of Table I ([`RopConfig::ropk`]).
    pub fn ropk(k: f64) -> RopPass {
        RopPass { config: RopConfig::ropk(k), explicit_seed: false }
    }

    /// The plain encoding with all predicates off ([`RopConfig::plain`]).
    pub fn plain() -> RopPass {
        RopPass { config: RopConfig::plain(), explicit_seed: false }
    }

    /// Full strength: P1 + P2 + P3 everywhere + gadget confusion
    /// ([`RopConfig::full`]).
    pub fn full() -> RopPass {
        RopPass { config: RopConfig::full(), explicit_seed: false }
    }

    /// Pins the pass to a specific seed, shielding it from
    /// [`Pipeline::seed`].
    pub fn with_seed(mut self, seed: u64) -> RopPass {
        self.config.seed = seed;
        self.explicit_seed = true;
        self
    }

    /// The configuration this pass will run with under `pipeline_seed`.
    pub fn effective_config(&self, pipeline_seed: Option<u64>) -> RopConfig {
        match pipeline_seed {
            Some(seed) if !self.explicit_seed => self.config.clone().with_seed(seed),
            _ => self.config.clone(),
        }
    }
}

impl ObfPass for RopPass {
    fn label(&self) -> String {
        if self.config.p1.is_none() && self.config.p3_fraction == 0.0 {
            "ROPplain".to_string()
        } else {
            format!("ROP{:.2}", self.config.p3_fraction)
        }
    }

    fn stage(&self) -> Stage {
        Stage::Image
    }

    fn run_image(
        &self,
        image: &mut Image,
        cx: &mut ImageCtx<'_>,
    ) -> Result<PassDetail, PipelineError> {
        let mut rewriter =
            Rewriter::new(self.effective_config(cx.seed)).with_mat_ctx(std::mem::take(cx.mat));
        let report = rewriter.rewrite_functions(image, cx.targets.iter().map(String::as_str));
        *cx.mat = rewriter.take_mat_ctx();
        cx.failures.extend(report.failures.iter().cloned());
        Ok(PassDetail::Rop(report))
    }

    fn static_audit(&self, image: &Image, detail: &PassDetail) -> Vec<StaticDiagnostic> {
        match detail {
            PassDetail::Rop(report) => audit_rop_image(image, report),
            _ => Vec::new(),
        }
    }
}

/// VM virtualization as a pipeline pass (wraps
/// [`raindrop_obfvm::apply_layers`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VmPass {
    config: VmConfig,
    explicit_seed: bool,
}

impl VmPass {
    /// A pass with an explicit configuration; its seed is *not* overridden
    /// by [`Pipeline::seed`].
    pub fn new(config: VmConfig) -> VmPass {
        VmPass { config, explicit_seed: true }
    }

    /// `nVM` — `layers` nested layers, no implicit flows.
    pub fn plain(layers: usize) -> VmPass {
        VmPass { config: VmConfig::plain(layers), explicit_seed: false }
    }

    /// `nVM-IMPx` — `layers` nested layers with implicit-VPC placement.
    pub fn with_implicit(layers: usize, implicit: ImplicitAt) -> VmPass {
        VmPass { config: VmConfig::with_implicit(layers, implicit), explicit_seed: false }
    }

    /// Pins the pass to a specific seed, shielding it from
    /// [`Pipeline::seed`].
    pub fn with_seed(mut self, seed: u64) -> VmPass {
        self.config.seed = seed;
        self.explicit_seed = true;
        self
    }

    /// The configuration this pass will run with under `pipeline_seed`.
    pub fn effective_config(&self, pipeline_seed: Option<u64>) -> VmConfig {
        match pipeline_seed {
            Some(seed) if !self.explicit_seed => VmConfig { seed, ..self.config },
            _ => self.config,
        }
    }
}

impl ObfPass for VmPass {
    fn label(&self) -> String {
        self.config.label()
    }

    fn stage(&self) -> Stage {
        Stage::Source
    }

    fn run_source(
        &self,
        program: &mut Program,
        cx: &mut SourceCtx<'_>,
    ) -> Result<PassDetail, PipelineError> {
        let config = self.effective_config(cx.seed);
        let mut report = VmReport {
            layers: config.layers,
            functions: Vec::new(),
            seed: config.seed,
            code: Vec::new(),
        };
        for target in cx.targets {
            let base = cx.vm_layers.get(target).copied().unwrap_or(0);
            match raindrop_obfvm::apply_layers(program, target, config, base) {
                Ok(applied) => {
                    for l in 0..config.layers {
                        let symbol = raindrop_obfvm::vm_code_symbol(base + l, target);
                        if let Some(g) = applied.program.globals.iter().find(|g| g.name == symbol) {
                            report.code.push(VmCode {
                                function: target.clone(),
                                layer: base + l,
                                symbol,
                                bytes: g.bytes.clone(),
                            });
                        }
                    }
                    *program = applied.program;
                    *cx.vm_layers.entry(target.clone()).or_insert(0) += config.layers;
                    report.functions.push((target.clone(), applied.bytecode_lens));
                }
                Err(e) => {
                    cx.failures.push((target.clone(), format!("vm obfuscation failed: {e}")));
                }
            }
        }
        Ok(PassDetail::Vm(report))
    }

    fn static_audit(&self, image: &Image, detail: &PassDetail) -> Vec<StaticDiagnostic> {
        match detail {
            PassDetail::Vm(report) => report
                .code
                .iter()
                .flat_map(|c| audit_vm_code(image, &c.symbol, &c.bytes, report.seed, c.layer))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// How a pipeline run verifies its output against the unobfuscated
/// baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum VerifyPolicy {
    /// No verification.
    #[default]
    None,
    /// Differential verification over [`default_verify_cases`] via
    /// [`verify_batch`].
    Batch,
    /// Differential verification over caller-provided cases.
    Cases(Vec<TestCase>),
    /// Zero-emulation static audit: every emitted chain is re-resolved and
    /// checked gadget-by-gadget, every VM bytecode blob byte-compared and
    /// re-decoded, and the symbol table bounds-checked — populating
    /// [`ObfReport::audit`] (and, for program inputs, pre-flight
    /// [`ObfReport::lints`]) instead of running test cases. See
    /// [`ObfReport::audit_clean`].
    Static,
}

/// The register-argument corner cases [`VerifyPolicy::Batch`] runs: zero,
/// small values, a byte pattern and the full 64-bit width.
pub fn default_verify_cases() -> Vec<TestCase> {
    [0u64, 1, 5, 0xAB, u64::MAX].iter().map(|v| TestCase::args(&[*v])).collect()
}

/// Name of the inner function an image-stage pass at `pass_index` rewrites
/// when later source passes forced a wrapper split (see the module docs on
/// VM-over-ROP).
pub fn rop_inner_name(pass_index: usize, func: &str) -> String {
    format!("__pipeline_rop{pass_index}_{func}")
}

/// Moves `func`'s body to a new function named `inner` and replaces `func`
/// with a thin wrapper forwarding its arguments to `inner`. This is the
/// source-level split the pipeline applies so an image-stage pass can end up
/// *underneath* later source-stage passes; it is public so direct-call
/// sequences (and the differential tests pinning them) can reproduce
/// pipeline output exactly.
///
/// # Errors
///
/// Fails when `func` does not exist in the program.
pub fn wrap_rop_target(
    program: &mut Program,
    func: &str,
    inner: &str,
) -> Result<(), PipelineError> {
    let idx = program
        .functions
        .iter()
        .position(|f| f.name == func)
        .ok_or_else(|| PipelineError::UnknownTarget(func.to_string()))?;
    let params = program.functions[idx].params;
    program.functions[idx].name = inner.to_string();
    program.functions.push(Function {
        name: func.to_string(),
        params,
        locals: 0,
        body: vec![Stmt::Return(Expr::Call(
            inner.to_string(),
            (0..params).map(Expr::Arg).collect(),
        ))],
    });
    Ok(())
}

/// One pass of a declarative [`ObfConfig`] chain.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PassSpec {
    /// ROP rewriting with this configuration.
    Rop(RopConfig),
    /// VM virtualization with this configuration.
    Vm(VmConfig),
}

impl PassSpec {
    /// Table I-style label of this pass.
    pub fn label(&self) -> String {
        match self {
            PassSpec::Rop(cfg) => RopPass::new(cfg.clone()).label(),
            PassSpec::Vm(cfg) => cfg.label(),
        }
    }

    /// The canonical field bag this pass hashes to. Per-pass RNG seeds are
    /// deliberately excluded: the artifact key carries the seed as its own
    /// component, so two requests differing only in seed share a config
    /// hash (and still get distinct artifacts).
    fn fields(&self) -> FieldBag {
        let mut bag = FieldBag::new();
        match self {
            PassSpec::Rop(cfg) => {
                bag.put_str("kind", "rop");
                bag.put_f64("p3_fraction", cfg.p3_fraction);
                bag.put_str(
                    "p3_variant",
                    match cfg.p3_variant {
                        P3Variant::ForLoop => "for_loop",
                        P3Variant::ArrayUpdate => "array_update",
                        P3Variant::Mixed => "mixed",
                    },
                );
                let p1 = cfg.p1.map(|p1| {
                    let mut b = FieldBag::new();
                    b.put_u64("n", p1.n as u64)
                        .put_u64("s", p1.s as u64)
                        .put_u64("p", p1.p as u64)
                        .put_u64("m", p1.m);
                    b
                });
                bag.put_opt_bag("p1", p1.as_ref());
                bag.put_bool("p2", cfg.p2);
                bag.put_bool("gadget_confusion", cfg.gadget_confusion);
                let mut catalog = FieldBag::new();
                catalog
                    .put_f64("diversity", cfg.catalog.diversity)
                    .put_u64("max_variants_per_op", cfg.catalog.max_variants_per_op as u64)
                    .put_u64("scan_max_insts", cfg.catalog.scan.max_insts as u64)
                    .put_u64("scan_max_lookback", cfg.catalog.scan.max_lookback as u64)
                    .put_u64("synth_max_junk", cfg.catalog.synth.max_junk as u64)
                    .put_f64("synth_junk_prob", cfg.catalog.synth.junk_prob);
                bag.put_bag("catalog", &catalog);
                bag.put_u64("max_rop_depth", cfg.max_rop_depth as u64);
                bag.put_u64("spill_slots", cfg.spill_slots as u64);
            }
            PassSpec::Vm(cfg) => {
                bag.put_str("kind", "vm");
                bag.put_u64("layers", cfg.layers as u64);
                bag.put_str(
                    "implicit",
                    match cfg.implicit {
                        ImplicitAt::None => "none",
                        ImplicitAt::First => "first",
                        ImplicitAt::Last => "last",
                        ImplicitAt::All => "all",
                    },
                );
            }
        }
        bag
    }
}

/// A declarative, *hashable* pipeline configuration: the pass chain in
/// nesting order (innermost first), without seeds.
///
/// This is the serializable half of a protection request — what the server
/// stores, hashes into artifact keys and turns into an executable
/// [`Pipeline`] with [`ObfConfig::pipeline`]. [`ObfConfig::config_hash`]
/// is *stable*: derived from a canonical name-sorted field encoding (see
/// [`crate::stable`]), so struct-field reordering can never silently remap
/// stored artifacts, while any semantic change to a knob does.
///
/// # Example
///
/// ```
/// use raindrop::pipeline::ObfConfig;
/// use raindrop::RopConfig;
/// use raindrop_obfvm::VmConfig;
///
/// // ROP over 1VM, declared innermost-first.
/// let config = ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(0.25));
/// assert_eq!(config.label(), "ROP0.25-over-1VM");
/// // The hash ignores per-pass seeds: the request seed is keyed separately.
/// let reseeded =
///     ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(0.25).with_seed(99));
/// assert_eq!(config.config_hash(), reseeded.config_hash());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ObfConfig {
    /// Passes in nesting order: the first pass is the innermost layer.
    pub passes: Vec<PassSpec>,
    /// Per-pass target restrictions, parallel to `passes` (shorter vectors
    /// are padded with `None`). `None` applies the pass to the whole run
    /// target list; `Some(set)` intersects with it — see
    /// [`ObfConfig::only`]. Restrictions are set semantics and participate
    /// in [`ObfConfig::config_hash`] only when present, so unrestricted
    /// configurations keep their historical hashes.
    pub pass_targets: Vec<Option<Vec<String>>>,
}

impl ObfConfig {
    /// An empty configuration (protecting with it is the identity).
    pub fn new() -> ObfConfig {
        ObfConfig::default()
    }

    /// Appends a ROP pass (builder style; its `seed` field is ignored by
    /// [`ObfConfig::pipeline`] and [`ObfConfig::config_hash`]).
    pub fn rop(mut self, cfg: RopConfig) -> ObfConfig {
        self.passes.push(PassSpec::Rop(cfg));
        self.pass_targets.push(None);
        self
    }

    /// Appends a VM pass (builder style; its `seed` field is ignored by
    /// [`ObfConfig::pipeline`] and [`ObfConfig::config_hash`]).
    pub fn vm(mut self, cfg: VmConfig) -> ObfConfig {
        self.passes.push(PassSpec::Vm(cfg));
        self.pass_targets.push(None);
        self
    }

    /// Restricts the most recently appended pass to `targets`, so one run
    /// can protect disjoint function subsets with different configurations
    /// (e.g. VM-virtualize `f` while ROP-rewriting `g`). Set semantics:
    /// order and duplicates are ignored; names absent from a run's target
    /// list simply never match. A pass whose restriction excludes every run
    /// target is recorded as [`PassDetail::Skipped`].
    ///
    /// # Panics
    ///
    /// Panics when no pass has been appended yet.
    pub fn only<S: AsRef<str>>(mut self, targets: &[S]) -> ObfConfig {
        let slot = self.pass_targets.last_mut().expect("`only` must follow a pass");
        *slot = Some(normalize_targets(targets));
        self
    }

    /// Builds the executable [`Pipeline`], threading `seed` into every
    /// pass (per-pass seed fields in the specs are overridden — the seed is
    /// an artifact-key component, not part of the configuration) and
    /// carrying over per-pass target restrictions.
    pub fn pipeline(&self, seed: u64) -> Pipeline {
        let mut p = Pipeline::new().seed(seed);
        for (i, spec) in self.passes.iter().enumerate() {
            p = match spec {
                PassSpec::Rop(cfg) => p.pass(RopPass::new(cfg.clone().with_seed(seed))),
                PassSpec::Vm(cfg) => p.pass(VmPass::new(VmConfig { seed, ..*cfg })),
            };
            if let Some(only) = self.pass_targets.get(i).and_then(Option::as_ref) {
                p = p.only(only);
            }
        }
        p
    }

    /// Outer-first composition label (`ROP0.25-over-1VM`, `NATIVE` when
    /// empty), matching the experiment drivers' row labels.
    pub fn label(&self) -> String {
        if self.passes.is_empty() {
            return "NATIVE".to_string();
        }
        let outer_first: Vec<String> = self.passes.iter().rev().map(PassSpec::label).collect();
        outer_first.join("-over-")
    }

    /// The stable 128-bit configuration hash — one third of the artifact
    /// store key. Pass *order* is semantic (nesting) and therefore part of
    /// the hash; per-pass seeds are not (see [`PassSpec`]).
    pub fn config_hash(&self) -> u128 {
        let mut h = StableHasher::new();
        h.write(b"obfconfig/v1;");
        for (i, spec) in self.passes.iter().enumerate() {
            h.write(format!("pass={:032x};", spec.fields().digest()).as_bytes());
            // A restriction is part of the configuration (the same pass
            // chain over different subsets produces different artifacts),
            // but an *absent* restriction hashes to nothing so historical
            // unrestricted hashes stay valid.
            if let Some(only) = self.pass_targets.get(i).and_then(Option::as_ref) {
                h.write(format!("only={};", normalize_targets(only).join(",")).as_bytes());
            }
        }
        h.finish()
    }
}

/// Canonicalizes a target-restriction list: sorted, deduplicated.
fn normalize_targets<S: AsRef<str>>(targets: &[S]) -> Vec<String> {
    let mut list: Vec<String> = targets.iter().map(|s| s.as_ref().to_string()).collect();
    list.sort();
    list.dedup();
    list
}

/// The pipeline builder: passes in nesting order, one seed, one verify
/// policy. See the [module docs](self) for the execution model.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn ObfPass>>,
    /// Per-pass target restrictions, parallel to `passes` (see
    /// [`Pipeline::only`]).
    restrictions: Vec<Option<Vec<String>>>,
    seed: Option<u64>,
    verify: VerifyPolicy,
}

/// Queued image-stage work for one pass: which stage names it transforms,
/// and whether the run had any live targets when the job was planned (a
/// requested-but-empty job is reported [`PassDetail::Skipped`] instead of
/// invoking the pass).
struct ImageJob {
    index: usize,
    targets: Vec<String>,
    requested: bool,
}

impl Pipeline {
    /// An empty pipeline (running it just compiles / clones the input).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Appends a pass. Passes apply in nesting order: the first pass is the
    /// innermost protection layer.
    ///
    /// Two image-stage passes may target the same function only when a
    /// source-stage pass sits between them (the wrapper split then gives
    /// each its own body): ROP-rewriting a function that an earlier image
    /// pass already replaced with a pivot stub is meaningless and records a
    /// per-target failure.
    pub fn pass(mut self, pass: impl ObfPass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self.restrictions.push(None);
        self
    }

    /// Appends an already-boxed pass (useful when composing dynamically).
    pub fn boxed_pass(mut self, pass: Box<dyn ObfPass>) -> Pipeline {
        self.passes.push(pass);
        self.restrictions.push(None);
        self
    }

    /// Restricts the most recently appended pass to `targets`: when the
    /// pipeline runs, that pass only touches the run targets also named
    /// here. Set semantics — order and duplicates are ignored, and names
    /// absent from the run's target list simply never match. A pass whose
    /// restriction excludes every run target is recorded as
    /// [`PassDetail::Skipped`] and leaves the program/image untouched.
    ///
    /// # Panics
    ///
    /// Panics when no pass has been appended yet.
    pub fn only<S: AsRef<str>>(mut self, targets: &[S]) -> Pipeline {
        let slot = self.restrictions.last_mut().expect("`only` must follow a pass");
        *slot = Some(normalize_targets(targets));
        self
    }

    /// The subset of `list` the pass at `index` may touch under its
    /// restriction (all of it when unrestricted).
    fn restricted(&self, index: usize, list: &[String]) -> Vec<String> {
        match self.restrictions.get(index).and_then(Option::as_ref) {
            Some(only) => list.iter().filter(|t| only.contains(*t)).cloned().collect(),
            None => list.to_vec(),
        }
    }

    /// Threads one seed deterministically through every pass that was not
    /// explicitly seeded.
    pub fn seed(mut self, seed: u64) -> Pipeline {
        self.seed = Some(seed);
        self
    }

    /// Sets the verification policy (default: [`VerifyPolicy::None`]).
    pub fn verify(mut self, policy: VerifyPolicy) -> Pipeline {
        self.verify = policy;
        self
    }

    /// Runs the pipeline on MiniC source, compiling at the source→image
    /// boundary. `targets` are the functions to obfuscate.
    ///
    /// # Errors
    ///
    /// Fails when a target is unknown, compilation fails, or a pass aborts;
    /// per-target obfuscation failures are collected in
    /// [`ObfReport::failures`] instead.
    pub fn run_program<S: AsRef<str>>(
        &self,
        program: &Program,
        targets: &[S],
    ) -> Result<PipelineRun, PipelineError> {
        self.run_program_with(program, targets, &mut PipelineWarm::new())
    }

    /// [`run_program`](Pipeline::run_program) with caller-owned warm
    /// scratch state, for services that run many pipelines and want to
    /// amortize buffer allocations across runs. Output is bit-identical to
    /// a cold run.
    ///
    /// # Errors
    ///
    /// Same contract as [`run_program`](Pipeline::run_program).
    pub fn run_program_with<S: AsRef<str>>(
        &self,
        program: &Program,
        targets: &[S],
        warm: &mut PipelineWarm,
    ) -> Result<PipelineRun, PipelineError> {
        let total_start = Instant::now();
        let targets: Vec<String> = targets.iter().map(|s| s.as_ref().to_string()).collect();
        for (i, t) in targets.iter().enumerate() {
            if program.function(t).is_none() {
                return Err(PipelineError::UnknownTarget(t.clone()));
            }
            if targets[..i].contains(t) {
                return Err(PipelineError::DuplicateTarget(t.clone()));
            }
        }

        // Pre-flight lint under the static policy: flag target shapes the
        // rewriter is known to mishandle before any pass runs.
        let lints = match self.verify {
            VerifyPolicy::Static => lint_program(program, &targets),
            _ => Vec::new(),
        };

        let mut working = program.clone();
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut vm_layers: BTreeMap<String, usize> = BTreeMap::new();
        // Maps stage names (e.g. split inner functions) back to the public
        // target name for reporting.
        let mut public_of: BTreeMap<String, String> = BTreeMap::new();
        let mut active: Vec<String> = targets.clone();
        let mut image_jobs: Vec<ImageJob> = Vec::new();
        let mut source_mutated = false;
        let mut reports: Vec<Option<PassReport>> = Vec::new();
        reports.resize_with(self.passes.len(), || None);

        // Phase A: walk passes in nesting order, applying source transforms
        // (including wrapper splits for image passes that must end up below
        // later source passes) and queueing image-stage work. Each pass sees
        // only the still-active targets its restriction admits.
        for (i, pass) in self.passes.iter().enumerate() {
            match pass.stage() {
                Stage::Source => {
                    let snapshot = self.restricted(i, &active);
                    if snapshot.is_empty() && !active.is_empty() {
                        // The restriction excluded every live target: do not
                        // run the pass (it could still mutate the program)
                        // and do not force a baseline recompile.
                        reports[i] = Some(PassReport {
                            label: pass.label(),
                            stage: Stage::Source,
                            wall: Duration::ZERO,
                            detail: PassDetail::Skipped,
                        });
                        continue;
                    }
                    source_mutated = true;
                    let before = failures.len();
                    let start = Instant::now();
                    let mut cx = SourceCtx {
                        seed: self.seed,
                        targets: &snapshot,
                        vm_layers: &mut vm_layers,
                        failures: &mut failures,
                    };
                    let detail = pass.run_source(&mut working, &mut cx)?;
                    reports[i] = Some(PassReport {
                        label: pass.label(),
                        stage: Stage::Source,
                        wall: start.elapsed(),
                        detail,
                    });
                    let failed: Vec<String> =
                        failures[before..].iter().map(|(n, _)| n.clone()).collect();
                    active.retain(|t| !failed.contains(t));
                }
                Stage::Image => {
                    let pass_active = self.restricted(i, &active);
                    let needs_split =
                        self.passes[i + 1..].iter().any(|p| p.stage() == Stage::Source);
                    let stage_targets = if needs_split {
                        let mut inner_names = Vec::with_capacity(pass_active.len());
                        for t in &pass_active {
                            let inner = rop_inner_name(i, t);
                            wrap_rop_target(&mut working, t, &inner)?;
                            public_of.insert(inner.clone(), t.clone());
                            inner_names.push(inner);
                        }
                        source_mutated = source_mutated || !inner_names.is_empty();
                        inner_names
                    } else {
                        pass_active
                    };
                    image_jobs.push(ImageJob {
                        index: i,
                        targets: stage_targets,
                        requested: !active.is_empty(),
                    });
                }
            }
        }

        // Phase B: compile once, then run the queued image passes in order.
        let compile_start = Instant::now();
        let mut image = codegen::compile(&working).map_err(PipelineError::Codegen)?;
        let compile_wall = compile_start.elapsed();
        // When no source pass (and no wrapper split) touched the program,
        // the boundary compile *is* the unobfuscated baseline — keep it and
        // skip the second codegen at verification time.
        let pristine = match (&self.verify, source_mutated) {
            (VerifyPolicy::None, _) | (_, true) => None,
            (_, false) => Some(image.clone()),
        };
        self.run_image_jobs(&mut image, image_jobs, &public_of, &mut failures, &mut reports, warm)?;

        // Map stage-name failures back to public names.
        let failures: Vec<(String, String)> = failures
            .into_iter()
            .map(|(name, reason)| (public_of.get(&name).cloned().unwrap_or(name), reason))
            .collect();

        // Phase C: differential verification against the unobfuscated
        // baseline (compiled from the *original* program).
        let verify_start = Instant::now();
        let verify = match self.verify_cases() {
            Some(cases) => {
                let baseline = match pristine {
                    Some(b) => b,
                    None => codegen::compile(program).map_err(PipelineError::Codegen)?,
                };
                self.run_verification(&baseline, &image, &targets, &failures, &cases)
            }
            None => Vec::new(),
        };
        let verify_wall = verify_start.elapsed();

        let mut report = ObfReport {
            passes: reports.into_iter().flatten().collect(),
            failures,
            verify,
            audit: Vec::new(),
            lints,
            compile_wall,
            verify_wall,
            total_wall: Duration::ZERO,
        };
        if matches!(self.verify, VerifyPolicy::Static) {
            report.audit = self.static_audit(&image, &report);
        }
        report.total_wall = total_start.elapsed();
        Ok(PipelineRun { image, report })
    }

    /// Runs the pipeline on an already-compiled image. Source-stage passes
    /// are rejected: an image cannot be lifted back to MiniC.
    ///
    /// # Errors
    ///
    /// Fails when the pipeline contains a source-stage pass, a target is
    /// unknown, or a pass aborts.
    pub fn run_image<S: AsRef<str>>(
        &self,
        image: &Image,
        targets: &[S],
    ) -> Result<PipelineRun, PipelineError> {
        self.run_image_with(image, targets, &mut PipelineWarm::new())
    }

    /// [`run_image`](Pipeline::run_image) with caller-owned warm scratch
    /// state (see [`Pipeline::run_program_with`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`run_image`](Pipeline::run_image).
    pub fn run_image_with<S: AsRef<str>>(
        &self,
        image: &Image,
        targets: &[S],
        warm: &mut PipelineWarm,
    ) -> Result<PipelineRun, PipelineError> {
        let total_start = Instant::now();
        if let Some(pass) = self.passes.iter().find(|p| p.stage() == Stage::Source) {
            return Err(PipelineError::SourcePassOnImage { pass: pass.label() });
        }
        let targets: Vec<String> = targets.iter().map(|s| s.as_ref().to_string()).collect();
        for (i, t) in targets.iter().enumerate() {
            if image.function(t).is_err() {
                return Err(PipelineError::UnknownTarget(t.clone()));
            }
            if targets[..i].contains(t) {
                return Err(PipelineError::DuplicateTarget(t.clone()));
            }
        }

        let mut working = image.clone();
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut reports: Vec<Option<PassReport>> = Vec::new();
        reports.resize_with(self.passes.len(), || None);
        let image_jobs: Vec<ImageJob> = (0..self.passes.len())
            .map(|i| ImageJob {
                index: i,
                targets: self.restricted(i, &targets),
                requested: !targets.is_empty(),
            })
            .collect();
        self.run_image_jobs(
            &mut working,
            image_jobs,
            &BTreeMap::new(),
            &mut failures,
            &mut reports,
            warm,
        )?;

        let verify_start = Instant::now();
        let verify = match self.verify_cases() {
            Some(cases) => self.run_verification(image, &working, &targets, &failures, &cases),
            None => Vec::new(),
        };
        let verify_wall = verify_start.elapsed();

        let mut report = ObfReport {
            passes: reports.into_iter().flatten().collect(),
            failures,
            verify,
            audit: Vec::new(),
            lints: Vec::new(),
            compile_wall: Duration::ZERO,
            verify_wall,
            total_wall: Duration::ZERO,
        };
        if matches!(self.verify, VerifyPolicy::Static) {
            report.audit = self.static_audit(&working, &report);
        }
        report.total_wall = total_start.elapsed();
        Ok(PipelineRun { image: working, report })
    }

    fn run_image_jobs(
        &self,
        image: &mut Image,
        jobs: Vec<ImageJob>,
        public_of: &BTreeMap<String, String>,
        failures: &mut Vec<(String, String)>,
        reports: &mut [Option<PassReport>],
        warm: &mut PipelineWarm,
    ) -> Result<(), PipelineError> {
        let public = |name: &String| public_of.get(name).unwrap_or(name).clone();
        for ImageJob { index: i, targets: stage_targets, requested } in jobs {
            // Drop targets that already failed (under any stage name mapping
            // to the same public function) in an earlier pass, so one
            // failure never cascades into duplicate entries.
            let failed: Vec<String> = failures.iter().map(|(n, _)| public(n)).collect();
            let stage_targets: Vec<String> =
                stage_targets.into_iter().filter(|t| !failed.contains(&public(t))).collect();
            if stage_targets.is_empty() && requested {
                // The run had targets but none survive for this pass (all
                // failed earlier, or the pass restriction excluded them):
                // invoking the pass anyway would still mutate the image
                // (e.g. a RopPass installs its runtime on attach),
                // diverging from the direct sequence.
                reports[i] = Some(PassReport {
                    label: self.passes[i].label(),
                    stage: Stage::Image,
                    wall: Duration::ZERO,
                    detail: PassDetail::Skipped,
                });
                continue;
            }
            let start = Instant::now();
            let mut cx =
                ImageCtx { seed: self.seed, targets: &stage_targets, failures, mat: &mut warm.mat };
            let detail = self.passes[i].run_image(image, &mut cx)?;
            reports[i] = Some(PassReport {
                label: self.passes[i].label(),
                stage: Stage::Image,
                wall: start.elapsed(),
                detail,
            });
        }
        Ok(())
    }

    fn verify_cases(&self) -> Option<Vec<TestCase>> {
        match &self.verify {
            VerifyPolicy::None | VerifyPolicy::Static => None,
            VerifyPolicy::Batch => Some(default_verify_cases()),
            VerifyPolicy::Cases(cases) => Some(cases.clone()),
        }
    }

    /// Statically audits `image` against a run's report: each pass checks
    /// what it emitted (chains, bytecode) via [`ObfPass::static_audit`],
    /// plus a final whole-image symbol audit. This is what
    /// [`VerifyPolicy::Static`] runs; it is public so callers can re-audit
    /// an image later (e.g. after deserializing it, or to pin that a
    /// deliberately corrupted copy is flagged).
    pub fn static_audit(&self, image: &Image, report: &ObfReport) -> Vec<AuditEntry> {
        let mut out = Vec::new();
        for (pass, pr) in self.passes.iter().zip(&report.passes) {
            out.push(AuditEntry {
                pass: pr.label.clone(),
                diagnostics: pass.static_audit(image, &pr.detail),
            });
        }
        out.push(AuditEntry { pass: "image".to_string(), diagnostics: audit_symbols(image) });
        out
    }

    fn run_verification(
        &self,
        baseline: &Image,
        obfuscated: &Image,
        targets: &[String],
        failures: &[(String, String)],
        cases: &[TestCase],
    ) -> Vec<VerifyOutcome> {
        targets
            .iter()
            .filter(|t| !failures.iter().any(|(f, _)| f == *t))
            .map(|t| VerifyOutcome {
                function: t.clone(),
                verdicts: verify_batch(baseline, obfuscated, t, cases),
            })
            .collect()
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("passes", &self.passes.iter().map(|p| p.label()).collect::<Vec<_>>())
            .field("restrictions", &self.restrictions)
            .field("seed", &self.seed)
            .field("verify", &self.verify)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::Emulator;
    use raindrop_synth::minic::BinOp;

    /// f(x) = (x ^ 0x5A) * 3 + 7, compiled-function shaped through codegen.
    fn sample_program() -> Program {
        Program::new().with_function(Function {
            name: "f".into(),
            params: 1,
            locals: 1,
            body: vec![
                Stmt::Assign(0, Expr::bin(BinOp::Xor, Expr::Arg(0), Expr::c(0x5A))),
                Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, Expr::Var(0), Expr::c(3)),
                    Expr::c(7),
                )),
            ],
        })
    }

    fn reference(x: u64) -> u64 {
        (x ^ 0x5A).wrapping_mul(3).wrapping_add(7)
    }

    fn run_f(image: &Image, x: u64) -> u64 {
        let mut emu = Emulator::new(image);
        emu.set_budget(2_000_000_000);
        emu.call_named(image, "f", &[x]).unwrap()
    }

    #[test]
    fn empty_pipeline_just_compiles() {
        let p = sample_program();
        let run = Pipeline::new().run_program(&p, &["f"]).unwrap();
        assert_eq!(run.image, codegen::compile(&p).unwrap());
        assert!(run.report.passes.is_empty());
    }

    #[test]
    fn rop_over_vm_and_vm_over_rop_both_preserve_semantics() {
        let p = sample_program();
        for (label, pipeline) in [
            ("rop-over-vm", Pipeline::new().pass(VmPass::plain(1)).pass(RopPass::full()).seed(3)),
            ("vm-over-rop", Pipeline::new().pass(RopPass::full()).pass(VmPass::plain(1)).seed(3)),
        ] {
            let run = pipeline.verify(VerifyPolicy::Batch).run_program(&p, &["f"]).unwrap();
            assert!(run.report.failures.is_empty(), "{label}: {:?}", run.report.failures);
            assert!(run.report.all_verified(), "{label}");
            for x in [0u64, 9, 1000] {
                assert_eq!(run_f(&run.image, x), reference(x), "{label} f({x})");
            }
        }
    }

    #[test]
    fn vm_over_rop_keeps_the_rop_chain_underneath() {
        let p = sample_program();
        let run = Pipeline::new()
            .pass(RopPass::full())
            .pass(VmPass::plain(1))
            .seed(11)
            .run_program(&p, &["f"])
            .unwrap();
        // The inner function was ROP-rewritten: its chain lives in .data.
        let inner = rop_inner_name(0, "f");
        assert!(run.image.symbol(&format!("__rop_chain_{inner}")).is_ok());
        // And the public entry is the VM interpreter (bytecode global).
        assert!(run.image.symbol("__vm0_f_code").is_ok());
    }

    #[test]
    fn static_policy_audits_cross_layer_runs_clean() {
        let p = sample_program();
        for (label, pipeline) in [
            ("rop", Pipeline::new().pass(RopPass::full()).seed(5)),
            ("rop-over-vm", Pipeline::new().pass(VmPass::plain(1)).pass(RopPass::full()).seed(5)),
            ("vm-over-rop", Pipeline::new().pass(RopPass::full()).pass(VmPass::plain(1)).seed(5)),
        ] {
            let run = pipeline.verify(VerifyPolicy::Static).run_program(&p, &["f"]).unwrap();
            assert!(run.report.failures.is_empty(), "{label}: {:?}", run.report.failures);
            assert!(run.report.verify.is_empty(), "{label}: static policy never emulates");
            assert!(
                run.report.audit_clean(),
                "{label}: {:?}",
                run.report.audit_diagnostics().collect::<Vec<_>>()
            );
            assert!(run.report.lints.is_empty(), "{label}");
        }
    }

    #[test]
    fn static_audit_flags_flipped_bytecode_and_chain_words() {
        let p = sample_program();
        let pipeline = Pipeline::new()
            .pass(VmPass::plain(1))
            .pass(RopPass::full())
            .seed(5)
            .verify(VerifyPolicy::Static);
        let run = pipeline.run_program(&p, &["f"]).unwrap();
        assert!(run.report.audit_clean());

        // Flip one byte of the VM bytecode blob.
        let mut corrupted = run.image.clone();
        let code_addr = corrupted.symbol("__vm0_f_code").unwrap();
        let off = (code_addr - corrupted.data_base) as usize;
        corrupted.data[off] ^= 0xFF;
        let audit = pipeline.static_audit(&corrupted, &run.report);
        assert!(
            audit.iter().flat_map(|e| &e.diagnostics).any(|d| matches!(
                d,
                StaticDiagnostic::BytecodeMismatch { .. } | StaticDiagnostic::BytecodeDecode { .. }
            )),
            "{audit:?}"
        );

        // Flip one word of the ROP chain.
        let mut corrupted = run.image.clone();
        let chain_addr = corrupted.symbol("__rop_chain_f").unwrap();
        let off = (chain_addr - corrupted.data_base) as usize;
        corrupted.data[off] ^= 0x04;
        let audit = pipeline.static_audit(&corrupted, &run.report);
        assert!(
            audit
                .iter()
                .flat_map(|e| &e.diagnostics)
                .any(|d| matches!(d, StaticDiagnostic::ChainBytesMismatch { .. })),
            "{audit:?}"
        );
    }

    #[test]
    fn static_policy_lints_zero_arg_call_targets() {
        let mut p = sample_program();
        p = p.with_function(Function {
            name: "zero".into(),
            params: 0,
            locals: 0,
            body: vec![Stmt::Return(Expr::c(3))],
        });
        p = p.with_function(Function {
            name: "caller".into(),
            params: 1,
            locals: 0,
            body: vec![Stmt::Return(Expr::Call("zero".into(), vec![]))],
        });
        let run = Pipeline::new()
            .pass(RopPass::plain())
            .seed(1)
            .verify(VerifyPolicy::Static)
            .run_program(&p, &["caller"])
            .unwrap();
        assert_eq!(
            run.report.lints,
            vec![crate::lint::RewriteLint::ZeroArgCall {
                function: "caller".into(),
                callee: "zero".into(),
                sites: 1,
            }]
        );
        // The lint predicted the mid-rewrite failure.
        assert!(!run.report.failures.is_empty());
    }

    #[test]
    fn pipeline_seed_reaches_unseeded_passes_only() {
        let rop = RopPass::full();
        assert_eq!(rop.effective_config(Some(9)).seed, 9);
        let pinned = RopPass::full().with_seed(5);
        assert_eq!(pinned.effective_config(Some(9)).seed, 5);
        let vm = VmPass::plain(2);
        assert_eq!(vm.effective_config(Some(9)).seed, 9);
        let vm_pinned = VmPass::plain(2).with_seed(4);
        assert_eq!(vm_pinned.effective_config(Some(9)).seed, 4);
        let explicit = RopPass::new(RopConfig::full());
        assert_eq!(explicit.effective_config(Some(9)).seed, RopConfig::full().seed);
    }

    #[test]
    fn unknown_targets_and_source_passes_on_images_are_rejected() {
        let p = sample_program();
        assert!(matches!(
            Pipeline::new().run_program(&p, &["nope"]),
            Err(PipelineError::UnknownTarget(_))
        ));
        assert!(matches!(
            Pipeline::new().run_program(&p, &["f", "f"]),
            Err(PipelineError::DuplicateTarget(_))
        ));
        let image = codegen::compile(&p).unwrap();
        assert!(matches!(
            Pipeline::new().pass(VmPass::plain(1)).run_image(&image, &["f"]),
            Err(PipelineError::SourcePassOnImage { .. })
        ));
    }

    #[test]
    fn per_target_failures_are_collected_not_fatal() {
        // A function too short to hold the pivot stub: the ROP pass records
        // a failure, the run still succeeds, verification skips the target.
        let tiny = Program::new().with_function(Function {
            name: "tiny".into(),
            params: 0,
            locals: 0,
            body: vec![Stmt::Return(Expr::c(1))],
        });
        let image = codegen::compile(&tiny).unwrap();
        let run = Pipeline::new()
            .pass(RopPass::plain())
            .verify(VerifyPolicy::Batch)
            .run_image(&image, &["tiny"])
            .unwrap();
        assert_eq!(run.report.failures.len(), 1);
        assert!(run.report.verify.is_empty());
        assert!(run.into_strict().is_err());
    }

    #[test]
    fn a_failed_target_is_skipped_by_later_image_passes() {
        // A ROP∘VM∘ROP sandwich (two image passes, split by the source
        // pass): "tiny" fails the inner ROP pass (too short for the pivot
        // stub), so the outer ROP pass must skip it — one failure entry,
        // no retry on the failed target — while "f" flows through the full
        // three-layer composition.
        let mut p = sample_program();
        p = p.with_function(Function {
            name: "tiny".into(),
            params: 0,
            locals: 0,
            body: vec![Stmt::Return(Expr::c(1))],
        });
        let run = Pipeline::new()
            .pass(RopPass::plain())
            .pass(VmPass::plain(1))
            .pass(RopPass::full())
            .seed(8)
            .run_program(&p, &["f", "tiny"])
            .unwrap();
        assert_eq!(run.report.failures.len(), 1, "{:?}", run.report.failures);
        assert_eq!(run.report.failures[0].0, "tiny");
        let rop = run.report.rop_passes();
        assert_eq!(rop[0].rewritten.len(), 1, "inner pass rewrote f's split body only");
        assert_eq!(rop[1].rewritten.len(), 1, "outer pass rewrote f's interpreter only");
        for x in [1u64, 77] {
            assert_eq!(run_f(&run.image, x), reference(x));
        }
    }

    #[test]
    fn report_carries_pass_structure_and_stats() {
        let p = sample_program();
        let run = Pipeline::new()
            .pass(VmPass::plain(1))
            .pass(RopPass::ropk(1.0))
            .seed(2)
            .verify(VerifyPolicy::Batch)
            .run_program(&p, &["f"])
            .unwrap();
        let report = &run.report;
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.passes[0].label, "1VM");
        assert_eq!(report.passes[1].label, "ROP1.00");
        let vm = report.passes[0].vm().expect("vm detail");
        assert_eq!(vm.functions.len(), 1);
        assert!(vm.functions[0].1[0] > 0, "bytecode produced");
        let rop = report.passes[1].rop().expect("rop detail");
        assert_eq!(rop.rewritten.len(), 1);
        assert!(rop.rewritten[0].chain_len > 0);
        assert!(rop.gadgets.total_used > 0);
        assert!(report.all_verified());
        assert!(report.total_wall >= report.compile_wall);
    }

    #[test]
    fn obf_config_hash_ignores_seeds_but_not_knobs_or_order() {
        let base = ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(0.25));

        // Per-pass seeds are key components, not configuration.
        let reseeded = ObfConfig::new()
            .vm(VmConfig { seed: 0xDEAD, ..VmConfig::plain(1) })
            .rop(RopConfig::ropk(0.25).with_seed(0xBEEF));
        assert_eq!(base.config_hash(), reseeded.config_hash());

        // Every semantic knob must perturb the hash.
        let k = ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(0.5));
        assert_ne!(base.config_hash(), k.config_hash());
        let layers = ObfConfig::new().vm(VmConfig::plain(2)).rop(RopConfig::ropk(0.25));
        assert_ne!(base.config_hash(), layers.config_hash());
        let implicit = ObfConfig::new()
            .vm(VmConfig::with_implicit(1, ImplicitAt::Last))
            .rop(RopConfig::ropk(0.25));
        assert_ne!(base.config_hash(), implicit.config_hash());

        // Nesting order is semantic: ROP-over-VM != VM-over-ROP.
        let swapped = ObfConfig::new().rop(RopConfig::ropk(0.25)).vm(VmConfig::plain(1));
        assert_ne!(base.config_hash(), swapped.config_hash());

        // And the hash itself is pinned, so a format change (which would
        // silently remap every stored artifact) fails loudly here.
        assert_eq!(base.config_hash(), 0x0719_f939_7885_37ff_bc78_3fad_7764_900b_u128);
    }

    #[test]
    fn obf_config_labels_match_driver_naming() {
        assert_eq!(ObfConfig::new().label(), "NATIVE");
        let c = ObfConfig::new().vm(VmConfig::plain(2)).rop(RopConfig::ropk(0.25));
        assert_eq!(c.label(), "ROP0.25-over-2VM");
        let v = ObfConfig::new().rop(RopConfig::full()).vm(VmConfig::plain(1));
        assert_eq!(v.label(), "1VM-over-ROP1.00");
    }

    #[test]
    fn obf_config_pipeline_matches_hand_built_pipeline() {
        let p = sample_program();
        let config = ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(0.25));
        let via_config = config.pipeline(9).run_program(&p, &["f"]).unwrap();
        let via_hand = Pipeline::new()
            .pass(VmPass::new(VmConfig { seed: 9, ..VmConfig::plain(1) }))
            .pass(RopPass::new(RopConfig::ropk(0.25).with_seed(9)))
            .seed(9)
            .run_program(&p, &["f"])
            .unwrap();
        assert_eq!(via_config.image, via_hand.image, "identical images byte for byte");
    }

    #[test]
    fn warm_state_reuse_is_invisible() {
        // The server's per-worker warm state must be undetectable in the
        // output: a pipeline run through a context that already protected
        // other programs is bit-identical to a cold run.
        let p = sample_program();
        let config = ObfConfig::new().rop(RopConfig::full());

        let cold = config.pipeline(5).run_program(&p, &["f"]).unwrap();

        let mut warm = PipelineWarm::new();
        // Dirty the warm state on different programs/configs first.
        let other = ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(1.0));
        other.pipeline(11).run_program_with(&p, &["f"], &mut warm).unwrap();
        config.pipeline(3).run_program_with(&p, &["f"], &mut warm).unwrap();

        let reused = config.pipeline(5).run_program_with(&p, &["f"], &mut warm).unwrap();
        assert_eq!(cold.image, reused.image, "warm context changed the output image");
    }

    /// Two independent functions: `f` as in [`sample_program`], plus
    /// `g(x) = (x + 11) ^ 0x21`.
    fn two_function_program() -> Program {
        sample_program().with_function(Function {
            name: "g".into(),
            params: 1,
            locals: 0,
            body: vec![Stmt::Return(Expr::bin(
                BinOp::Xor,
                Expr::bin(BinOp::Add, Expr::Arg(0), Expr::c(11)),
                Expr::c(0x21),
            ))],
        })
    }

    fn reference_g(x: u64) -> u64 {
        x.wrapping_add(11) ^ 0x21
    }

    #[test]
    fn per_pass_restrictions_protect_disjoint_subsets() {
        // One run, two disjoint protections: virtualize `f`, ROP-rewrite
        // `g`. Each pass must touch only its own subset.
        let p = two_function_program();
        let run = Pipeline::new()
            .pass(VmPass::plain(1))
            .only(&["f"])
            .pass(RopPass::ropk(1.0))
            .only(&["g"])
            .seed(3)
            .verify(VerifyPolicy::Batch)
            .run_program(&p, &["f", "g"])
            .unwrap();
        assert!(run.report.failures.is_empty(), "{:?}", run.report.failures);
        assert!(run.report.all_verified());
        let vm = run.report.passes[0].vm().expect("vm detail");
        let vm_targets: Vec<&str> = vm.functions.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(vm_targets, ["f"], "VM pass touched exactly its subset");
        let rop = run.report.passes[1].rop().expect("rop detail");
        let rop_targets: Vec<&str> = rop.rewritten.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(rop_targets, ["g"], "ROP pass touched exactly its subset");
        for x in [0u64, 9, 1000] {
            assert_eq!(run_f(&run.image, x), reference(x), "f({x})");
            let mut emu = Emulator::new(&run.image);
            emu.set_budget(2_000_000_000);
            assert_eq!(emu.call_named(&run.image, "g", &[x]).unwrap(), reference_g(x), "g({x})");
        }
    }

    #[test]
    fn restriction_excluding_every_target_skips_the_pass() {
        let p = sample_program();
        // Image-stage pass restricted to a function this run never targets:
        // skipped, and the output is the plain compile.
        let run = Pipeline::new()
            .pass(RopPass::ropk(1.0))
            .only(&["g"])
            .seed(1)
            .run_program(&p, &["f"])
            .unwrap();
        assert_eq!(run.report.passes[0].detail, PassDetail::Skipped);
        assert_eq!(run.image, codegen::compile(&p).unwrap(), "image untouched");

        // Source-stage pass likewise — and the skip must not force a
        // wrapper split or baseline recompile.
        let run = Pipeline::new()
            .pass(VmPass::plain(1))
            .only(&["g"])
            .seed(1)
            .run_program(&p, &["f"])
            .unwrap();
        assert_eq!(run.report.passes[0].detail, PassDetail::Skipped);
        assert_eq!(run.image, codegen::compile(&p).unwrap(), "program untouched");
    }

    #[test]
    fn obf_config_restrictions_hash_and_thread_into_pipelines() {
        let base = ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(0.25));
        let restricted = ObfConfig::new()
            .vm(VmConfig::plain(1))
            .only(&["f"])
            .rop(RopConfig::ropk(0.25))
            .only(&["g"]);

        // A restriction is semantic: same chain over different subsets
        // yields different artifacts.
        assert_ne!(base.config_hash(), restricted.config_hash());
        // ...and which pass carries which subset matters.
        let swapped = ObfConfig::new()
            .vm(VmConfig::plain(1))
            .only(&["g"])
            .rop(RopConfig::ropk(0.25))
            .only(&["f"]);
        assert_ne!(restricted.config_hash(), swapped.config_hash());

        // Restrictions are sets: order and duplicates are not semantic.
        let a = ObfConfig::new().rop(RopConfig::ropk(0.25)).only(&["b", "a"]);
        let b = ObfConfig::new().rop(RopConfig::ropk(0.25)).only(&["a", "b", "a"]);
        assert_eq!(a.config_hash(), b.config_hash());

        // pipeline() threads the restrictions: config-driven equals
        // hand-built, byte for byte.
        let p = two_function_program();
        let config = ObfConfig::new()
            .vm(VmConfig::plain(1))
            .only(&["f"])
            .rop(RopConfig::ropk(1.0))
            .only(&["g"]);
        let via_config = config.pipeline(9).run_program(&p, &["f", "g"]).unwrap();
        let via_hand = Pipeline::new()
            .pass(VmPass::new(VmConfig { seed: 9, ..VmConfig::plain(1) }))
            .only(&["f"])
            .pass(RopPass::new(RopConfig::ropk(1.0).with_seed(9)))
            .only(&["g"])
            .seed(9)
            .run_program(&p, &["f", "g"])
            .unwrap();
        assert_eq!(via_config.image, via_hand.image, "identical images byte for byte");
    }
}
