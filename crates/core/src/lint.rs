//! Pre-flight source lints for shapes the ROP rewriter is known to
//! mishandle.
//!
//! The rewriter's register-pressure model has one documented blind spot:
//! a call with **zero arguments**. Every argument register stays live
//! across a call (the translator cannot prove the callee ignores them), so
//! a zero-argument call site leaves the translator no argument register to
//! use as scratch and the rewrite fails mid-flight with a register-pressure
//! error. The workload corpus works around it by threading one ignored
//! argument into such callees (see the `smc_cell` note in
//! `raindrop-synth`'s `classes` module); real inputs may not.
//!
//! [`lint_program`] detects the shape *before* rewriting, turning the
//! mid-rewrite failure into a typed, located diagnostic the pipeline can
//! surface next to its other reports (it runs automatically under
//! [`VerifyPolicy::Static`](crate::pipeline::VerifyPolicy::Static)).

use raindrop_synth::minic::{Expr, Function, Program, Stmt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One pre-rewrite lint finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewriteLint {
    /// A rewrite target calls a function with zero arguments — the
    /// register-pressure blind spot: all six argument registers stay live
    /// across the call, exceeding the translator's scratch budget.
    ZeroArgCall {
        /// The rewrite target containing the call.
        function: String,
        /// The callee invoked without arguments.
        callee: String,
        /// Number of zero-argument call sites of that callee.
        sites: usize,
    },
}

impl fmt::Display for RewriteLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteLint::ZeroArgCall { function, callee, sites } => write!(
                f,
                "`{function}` calls `{callee}` with zero arguments at {sites} site(s); \
                 the ROP translator cannot rewrite zero-argument calls (every argument \
                 register stays live across the call, exceeding its scratch budget)"
            ),
        }
    }
}

/// Lints the rewrite `targets` of `program` for shapes the ROP rewriter is
/// known to mishandle. Non-target functions are not linted: the rewriter
/// never touches them, so the shapes are harmless there.
pub fn lint_program<S: AsRef<str>>(program: &Program, targets: &[S]) -> Vec<RewriteLint> {
    let mut out = Vec::new();
    for target in targets {
        let Some(func) = program.function(target.as_ref()) else { continue };
        out.extend(lint_function(func));
    }
    out
}

/// Lints a single function (see [`lint_program`]).
pub fn lint_function(func: &Function) -> Vec<RewriteLint> {
    let mut sites: Vec<(String, usize)> = Vec::new();
    walk_stmts(&func.body, &mut |expr| {
        if let Expr::Call(callee, args) = expr {
            if args.is_empty() {
                match sites.iter_mut().find(|(c, _)| c == callee) {
                    Some((_, n)) => *n += 1,
                    None => sites.push((callee.clone(), 1)),
                }
            }
        }
    });
    sites
        .into_iter()
        .map(|(callee, sites)| RewriteLint::ZeroArgCall {
            function: func.name.clone(),
            callee,
            sites,
        })
        .collect()
}

fn walk_stmts(stmts: &[Stmt], visit: &mut impl FnMut(&Expr)) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::ExprStmt(e) => walk_expr(e, visit),
            Stmt::Store(a, v) | Stmt::StoreByte(a, v) => {
                walk_expr(a, visit);
                walk_expr(v, visit);
            }
            Stmt::If(c, then, otherwise) => {
                walk_expr(c, visit);
                walk_stmts(then, visit);
                walk_stmts(otherwise, visit);
            }
            Stmt::While(c, body) => {
                walk_expr(c, visit);
                walk_stmts(body, visit);
            }
            Stmt::Probe(_) => {}
        }
    }
}

fn walk_expr(expr: &Expr, visit: &mut impl FnMut(&Expr)) {
    visit(expr);
    match expr {
        Expr::Un(_, a) | Expr::Load(a) | Expr::LoadByte(a) => walk_expr(a, visit),
        Expr::Bin(_, a, b) => {
            walk_expr(a, visit);
            walk_expr(b, visit);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::Const(_) | Expr::Var(_) | Expr::Arg(_) | Expr::GlobalAddr(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_synth::minic::BinOp;

    fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// The exact corpus shape the blind spot is documented on: `smc_cell`
    /// takes one (ignored) argument precisely so its callers stay
    /// rewritable. Dropping that argument must trip the lint.
    #[test]
    fn zero_arg_call_shape_is_flagged() {
        let callee = Function {
            name: "smc_cell".into(),
            params: 0,
            locals: 0,
            body: vec![Stmt::Return(c(7))],
        };
        let caller = Function {
            name: "driver".into(),
            params: 1,
            locals: 1,
            body: vec![
                Stmt::Assign(0, Expr::Call("smc_cell".into(), vec![])),
                Stmt::While(
                    Expr::bin(BinOp::Lt, Expr::Var(0), c(3)),
                    vec![Stmt::Assign(
                        0,
                        Expr::bin(BinOp::Add, Expr::Var(0), Expr::Call("smc_cell".into(), vec![])),
                    )],
                ),
                Stmt::Return(Expr::Var(0)),
            ],
        };
        let program = Program { functions: vec![callee, caller], globals: vec![] };

        let lints = lint_program(&program, &["driver"]);
        assert_eq!(
            lints,
            vec![RewriteLint::ZeroArgCall {
                function: "driver".into(),
                callee: "smc_cell".into(),
                sites: 2,
            }]
        );
        // The corpus workaround — one ignored argument — silences it.
        assert!(lint_program(&program, &["smc_cell"]).is_empty());
    }

    #[test]
    fn calls_with_arguments_are_clean() {
        let caller = Function {
            name: "f".into(),
            params: 1,
            locals: 0,
            body: vec![Stmt::Return(Expr::Call("g".into(), vec![Expr::Arg(0)]))],
        };
        let program = Program { functions: vec![caller], globals: vec![] };
        assert!(lint_program(&program, &["f"]).is_empty());
    }
}
