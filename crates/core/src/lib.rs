//! # raindrop
//!
//! A Rust reproduction of the ROP-based program obfuscator from
//! *"Hiding in the Particles: When Return-Oriented Programming Meets Program
//! Obfuscation"* (Borrello, Coppa, D'Elia — DSN 2021).
//!
//! The crate rewrites compiled RM64 functions (see `raindrop-machine`) into
//! self-contained ROP chains stored in the binary's data section, preserving
//! the original stack behaviour through a stack-switching runtime so that
//! ROP and native code interoperate seamlessly. Three strengthening
//! predicates raise the bar against automated deobfuscation:
//!
//! * **P1** hides branch displacements behind a periodic opaque array;
//! * **P2** ties the control flow to data through opaque stack-pointer
//!   adjustments on equality branches;
//! * **P3** widens the explorable state space with input-coupled opaque
//!   loops and implicit-flow array updates.
//!
//! Gadget confusion (diversified artificial gadgets, disguised immediates,
//! unaligned RSP updates) additionally defeats byte-pattern scanning.
//!
//! Obfuscations compose through the [`pipeline`] module: a [`Pipeline`]
//! chains [`ObfPass`]es (ROP rewriting, VM layering, or custom passes) in
//! nesting order, threads one seed through them, and differentially
//! verifies the result against the unobfuscated baseline.
//!
//! # Example
//!
//! ```
//! use raindrop::pipeline::{Pipeline, RopPass, VerifyPolicy};
//! use raindrop_machine::{AluOp, Assembler, Emulator, ImageBuilder, Inst, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy compiled function: f(x) = x * 2 + 1 with a stack frame.
//! use raindrop_machine::Mem;
//! let mut asm = Assembler::new();
//! asm.inst(Inst::Push(Reg::Rbp))
//!     .inst(Inst::MovRR(Reg::Rbp, Reg::Rsp))
//!     .inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16))
//!     .inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi))
//!     .inst(Inst::StoreI(Mem::base_disp(Reg::Rbp, -16), 0))
//!     .inst(Inst::Load(Reg::Rax, Mem::base_disp(Reg::Rbp, -8)))
//!     .inst(Inst::AluM(AluOp::Add, Reg::Rax, Mem::base_disp(Reg::Rbp, -16)))
//!     .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rax))
//!     .inst(Inst::AluI(AluOp::Add, Reg::Rax, 1))
//!     .inst(Inst::Leave)
//!     .inst(Inst::Ret);
//! let mut builder = ImageBuilder::new();
//! builder.add_function("double_plus_one", asm);
//! let original = builder.build()?;
//!
//! // Rewrite it into a ROP chain through the pipeline, with built-in
//! // differential verification against the original image.
//! let run = Pipeline::new()
//!     .pass(RopPass::full())
//!     .seed(42)
//!     .verify(VerifyPolicy::Batch)
//!     .run_image(&original, &["double_plus_one"])?;
//! assert!(run.report.all_verified());
//!
//! // Same observable behaviour.
//! let obfuscated = run.image;
//! let mut emu = Emulator::new(&obfuscated);
//! assert_eq!(emu.call_named(&obfuscated, "double_plus_one", &[20])?, 41);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod config;
pub mod craft;
pub mod error;
pub mod lint;
pub mod materialize;
pub mod pipeline;
pub mod predicates;
pub mod rewriter;
pub mod roplet;
pub mod runtime;
pub mod stable;
pub mod verify;

pub use chain::{Chain, ChainItem, ChainScratch, DeltaTarget, ResolvedChain, SwitchPatch};
pub use config::{P1Config, P3Variant, RopConfig};
pub use craft::{CraftStats, Crafter};
pub use error::{FailureClass, RewriteError};
pub use lint::{lint_function, lint_program, RewriteLint};
pub use materialize::{MaterializeCtx, Materialized};
pub use pipeline::{
    AuditEntry, ObfConfig, ObfPass, ObfReport, PassReport, PassSpec, Pipeline, PipelineError,
    PipelineRun, PipelineWarm, RopPass, VerifyPolicy, VmCode, VmPass,
};
pub use predicates::{P1Instance, P2Adjust, P2Operand, P3Policy};
pub use rewriter::{ImageReport, RewriteReport, Rewriter};
pub use roplet::{classify as classify_roplet, Roplet, RopletKind};
pub use runtime::{RopRuntime, FUNC_RET_SYMBOL, SPILL_SYMBOL, SS_SYMBOL};
pub use stable::{stable_hash_bytes, FieldBag, StableHasher};
pub use verify::{
    audit_rop_function, audit_rop_image, audit_symbols, audit_vm_code, check_case, equivalent,
    verify_batch, StaticDiagnostic, TestCase, Verdict,
};
