//! Materialization (§IV-B3): fixing the chain layout, embedding it in the
//! binary, and replacing the original function body with the pivoting stub.
//!
//! The hot path is [`MaterializeCtx::materialize`]: a reusable context that
//! keeps the chain-resolution scratch, the resolved-chain buffers, the body
//! image and the chain-symbol name alive across functions, so materializing
//! a whole image allocates only what the image itself must grow by.

use crate::chain::{Chain, ChainScratch, ResolvedChain};
use crate::error::RewriteError;
use crate::runtime::RopRuntime;
use raindrop_machine::Image;
use std::fmt::Write as _;

/// Result of materializing one function's chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Materialized {
    /// Address of the chain in `.data`.
    pub chain_addr: u64,
    /// Size of the chain in bytes.
    pub chain_len: usize,
    /// Size of the pivot stub patched over the original body.
    pub stub_len: usize,
}

/// Reusable materialization context.
///
/// Owns every buffer the per-function materialization step needs — the
/// [`ChainScratch`] offset/block tables, the resolved chain bytes, the
/// replacement body and the chain symbol name — and reuses them across
/// calls. The [`Rewriter`](crate::Rewriter) holds one for the lifetime of an
/// image rewrite; `Pipeline` runs inherit it through the rewriter.
#[derive(Debug, Default)]
pub struct MaterializeCtx {
    scratch: ChainScratch,
    resolved: ResolvedChain,
    body: Vec<u8>,
    chain_name: String,
}

impl MaterializeCtx {
    /// Creates an empty context.
    pub fn new() -> MaterializeCtx {
        MaterializeCtx::default()
    }

    /// Resolves the chain, appends it to `.data`, patches the original
    /// function with the pivot stub and applies switch-table displacement
    /// patches. All intermediate buffers come from (and return to) this
    /// context, so repeated calls reuse warm allocations.
    ///
    /// # Errors
    ///
    /// Fails when the chain cannot be resolved, the function body cannot
    /// hold the stub, or a switch patch would overlap the stub.
    pub fn materialize(
        &mut self,
        image: &mut Image,
        runtime: &RopRuntime,
        func_name: &str,
        chain: &Chain,
    ) -> Result<Materialized, RewriteError> {
        let func = image.function(func_name)?;
        let (func_addr, func_size) = (func.addr, func.size);
        let stub_len = RopRuntime::pivot_stub_len();
        if func_size < stub_len {
            return Err(RewriteError::FunctionTooShort { size: func_size, needed: stub_len });
        }

        chain.resolve_into(&mut self.scratch, &mut self.resolved).map_err(|e| {
            RewriteError::UnsupportedInstruction {
                addr: func_addr,
                inst: format!("chain resolution failed: {e}"),
            }
        })?;

        // Switch patches must not collide with the pivot stub we are about
        // to write over the function entry.
        for (text_addr, _) in &self.resolved.switch_values {
            if *text_addr < func_addr + stub_len {
                return Err(RewriteError::UnsupportedInstruction {
                    addr: *text_addr,
                    inst: "switch case overlaps the pivot stub".to_string(),
                });
            }
        }

        self.chain_name.clear();
        let _ = write!(self.chain_name, "__rop_chain_{func_name}");
        let chain_addr = image.append_data(Some(&self.chain_name), &self.resolved.bytes);

        // Overwrite the whole original body: pivot stub first, `hlt` filler
        // for the rest so stray execution traps instead of running stale
        // code.
        let stub = runtime.pivot_stub(chain_addr);
        self.body.clear();
        self.body.resize(func_size as usize, 0x01u8);
        self.body[..stub.len()].copy_from_slice(&stub);
        image.patch_text(func_addr, &self.body)?;

        // Switch displacements are written after the body replacement so
        // they survive it.
        for (text_addr, value) in &self.resolved.switch_values {
            image.patch_text(*text_addr, &value.to_le_bytes())?;
        }

        Ok(Materialized { chain_addr, chain_len: self.resolved.bytes.len(), stub_len: stub.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainItem;
    use crate::config::RopConfig;
    use raindrop_gadgets::GadgetOp;
    use raindrop_machine::{encode_all, Assembler, Emulator, Inst, Reg};

    fn image_with_big_function() -> Image {
        let mut a = Assembler::new();
        // Plenty of bytes so the stub fits.
        for _ in 0..12 {
            a.inst(Inst::MovRI(Reg::Rax, 7));
        }
        a.inst(Inst::Ret);
        let mut b = raindrop_machine::ImageBuilder::new();
        b.add_function("f", a);
        b.build().unwrap()
    }

    #[test]
    fn materialized_chain_is_entered_through_the_stub() {
        let mut img = image_with_big_function();
        let cfg = RopConfig::default();
        let rt = RopRuntime::install(&mut img, &cfg);

        // Hand-build a tiny chain: rax = 99, then unpivot (same sequence the
        // crafter's epilogue lowering produces).
        let pop_rax = img.append_text(None, &encode_all(&[Inst::Pop(Reg::Rax), Inst::Ret]));
        let pop_r10 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R10), Inst::Ret]));
        let pop_r11 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R11), Inst::Ret]));
        let sub_store = img.append_text(
            None,
            &encode_all(&[
                Inst::AluStore(
                    raindrop_machine::AluOp::Sub,
                    raindrop_machine::Mem::base(Reg::R10),
                    Reg::R11,
                ),
                Inst::Ret,
            ]),
        );
        let add_load = img.append_text(
            None,
            &encode_all(&[
                Inst::AluM(
                    raindrop_machine::AluOp::Add,
                    Reg::R10,
                    raindrop_machine::Mem::base(Reg::R10),
                ),
                Inst::Ret,
            ]),
        );
        let add_rr = img.append_text(
            None,
            &encode_all(&[Inst::Alu(raindrop_machine::AluOp::Add, Reg::R10, Reg::R11), Inst::Ret]),
        );
        let load_rsp = img.append_text(
            None,
            &encode_all(&[Inst::Load(Reg::Rsp, raindrop_machine::Mem::base(Reg::R10)), Inst::Ret]),
        );

        let mk = |addr| ChainItem::Gadget { addr, junk_pops: 0, op: GadgetOp::Unclassified };
        let chain = Chain {
            items: vec![
                mk(pop_rax),
                ChainItem::Imm(99),
                mk(pop_r10),
                ChainItem::Imm(rt.ss_addr),
                mk(pop_r11),
                ChainItem::Imm(8),
                mk(sub_store),
                mk(add_load),
                mk(add_rr),
                mk(load_rsp),
            ],
            switch_patches: vec![],
        };

        let mut ctx = MaterializeCtx::new();
        let m = ctx.materialize(&mut img, &rt, "f", &chain).unwrap();
        assert!(img.in_data(m.chain_addr));
        assert_eq!(m.chain_len, 10 * 8);

        let mut emu = Emulator::new(&img);
        let ret = emu.call_named(&img, "f", &[]).unwrap();
        assert_eq!(ret, 99);
        assert_eq!(emu.mem.read_u64(rt.ss_addr), 0, "stack-switch slot released");
    }

    #[test]
    fn too_short_functions_are_rejected() {
        let mut a = Assembler::new();
        a.inst(Inst::Ret);
        let mut b = raindrop_machine::ImageBuilder::new();
        b.add_function("tiny", a);
        let mut img = b.build().unwrap();
        let cfg = RopConfig::default();
        let rt = RopRuntime::install(&mut img, &cfg);
        let chain = Chain { items: vec![ChainItem::Imm(0)], switch_patches: vec![] };
        assert!(matches!(
            MaterializeCtx::new().materialize(&mut img, &rt, "tiny", &chain),
            Err(RewriteError::FunctionTooShort { .. })
        ));
    }

    /// A context that already materialized another chain behaves exactly
    /// like a fresh one — reuse only recycles scratch buffers.
    #[test]
    fn reused_context_matches_fresh_context() {
        let base = image_with_big_function();
        let cfg = RopConfig::default();

        let build = |image: &mut Image| {
            let rt = RopRuntime::install(image, &cfg);
            let pop = image.append_text(None, &encode_all(&[Inst::Pop(Reg::Rax), Inst::Ret]));
            let chain = Chain {
                items: vec![
                    ChainItem::Gadget { addr: pop, junk_pops: 0, op: GadgetOp::Unclassified },
                    ChainItem::Imm(7),
                ],
                switch_patches: vec![],
            };
            (rt, chain)
        };

        let mut via_fresh = base.clone();
        let (rt_a, chain_a) = build(&mut via_fresh);
        let a = MaterializeCtx::new().materialize(&mut via_fresh, &rt_a, "f", &chain_a).unwrap();

        // Warm the context on a throwaway image first, then reuse it.
        let mut ctx = MaterializeCtx::new();
        let mut scratch = base.clone();
        let (rt_s, chain_s) = build(&mut scratch);
        ctx.materialize(&mut scratch, &rt_s, "f", &chain_s).unwrap();

        let mut via_warm = base.clone();
        let (rt_b, chain_b) = build(&mut via_warm);
        let b = ctx.materialize(&mut via_warm, &rt_b, "f", &chain_b).unwrap();

        assert_eq!(a, b);
        assert_eq!(via_fresh, via_warm, "identical images byte for byte");
    }
}
