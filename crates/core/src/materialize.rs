//! Materialization (§IV-B3): fixing the chain layout, embedding it in the
//! binary, and replacing the original function body with the pivoting stub.

use crate::chain::Chain;
use crate::error::RewriteError;
use crate::runtime::RopRuntime;
use raindrop_machine::Image;

/// Result of materializing one function's chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Materialized {
    /// Address of the chain in `.data`.
    pub chain_addr: u64,
    /// Size of the chain in bytes.
    pub chain_len: usize,
    /// Size of the pivot stub patched over the original body.
    pub stub_len: usize,
}

/// Resolves the chain, appends it to `.data`, patches the original function
/// with the pivot stub and applies switch-table displacement patches.
///
/// # Errors
///
/// Fails when the chain cannot be resolved, the function body cannot hold
/// the stub, or a switch patch would overlap the stub.
pub fn materialize(
    image: &mut Image,
    runtime: &RopRuntime,
    func_name: &str,
    chain: &Chain,
) -> Result<Materialized, RewriteError> {
    let func = image.function(func_name)?.clone();
    let stub_len = RopRuntime::pivot_stub_len();
    if func.size < stub_len {
        return Err(RewriteError::FunctionTooShort { size: func.size, needed: stub_len });
    }

    let resolved = chain.resolve().map_err(|e| RewriteError::UnsupportedInstruction {
        addr: func.addr,
        inst: format!("chain resolution failed: {e}"),
    })?;

    // Switch patches must not collide with the pivot stub we are about to
    // write over the function entry.
    for (text_addr, _) in &resolved.switch_values {
        if *text_addr < func.addr + stub_len {
            return Err(RewriteError::UnsupportedInstruction {
                addr: *text_addr,
                inst: "switch case overlaps the pivot stub".to_string(),
            });
        }
    }

    let chain_name = format!("__rop_chain_{func_name}");
    let chain_addr = image.append_data(Some(&chain_name), &resolved.bytes);

    // Overwrite the whole original body: pivot stub first, `hlt` filler for
    // the rest so stray execution traps instead of running stale code.
    let stub = runtime.pivot_stub(chain_addr);
    let mut body = vec![0x01u8; func.size as usize];
    body[..stub.len()].copy_from_slice(&stub);
    image.patch_text(func.addr, &body)?;

    // Switch displacements are written after the body replacement so they
    // survive it.
    for (text_addr, value) in &resolved.switch_values {
        image.patch_text(*text_addr, &value.to_le_bytes())?;
    }

    Ok(Materialized { chain_addr, chain_len: resolved.bytes.len(), stub_len: stub.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainItem;
    use crate::config::RopConfig;
    use raindrop_gadgets::GadgetOp;
    use raindrop_machine::{encode_all, Assembler, Emulator, Inst, Reg};

    fn image_with_big_function() -> Image {
        let mut a = Assembler::new();
        // Plenty of bytes so the stub fits.
        for _ in 0..12 {
            a.inst(Inst::MovRI(Reg::Rax, 7));
        }
        a.inst(Inst::Ret);
        let mut b = raindrop_machine::ImageBuilder::new();
        b.add_function("f", a);
        b.build().unwrap()
    }

    #[test]
    fn materialized_chain_is_entered_through_the_stub() {
        let mut img = image_with_big_function();
        let cfg = RopConfig::default();
        let rt = RopRuntime::install(&mut img, &cfg);

        // Hand-build a tiny chain: rax = 99, then unpivot (same sequence the
        // crafter's epilogue lowering produces).
        let pop_rax = img.append_text(None, &encode_all(&[Inst::Pop(Reg::Rax), Inst::Ret]));
        let pop_r10 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R10), Inst::Ret]));
        let pop_r11 = img.append_text(None, &encode_all(&[Inst::Pop(Reg::R11), Inst::Ret]));
        let sub_store = img.append_text(
            None,
            &encode_all(&[
                Inst::AluStore(
                    raindrop_machine::AluOp::Sub,
                    raindrop_machine::Mem::base(Reg::R10),
                    Reg::R11,
                ),
                Inst::Ret,
            ]),
        );
        let add_load = img.append_text(
            None,
            &encode_all(&[
                Inst::AluM(
                    raindrop_machine::AluOp::Add,
                    Reg::R10,
                    raindrop_machine::Mem::base(Reg::R10),
                ),
                Inst::Ret,
            ]),
        );
        let add_rr = img.append_text(
            None,
            &encode_all(&[Inst::Alu(raindrop_machine::AluOp::Add, Reg::R10, Reg::R11), Inst::Ret]),
        );
        let load_rsp = img.append_text(
            None,
            &encode_all(&[Inst::Load(Reg::Rsp, raindrop_machine::Mem::base(Reg::R10)), Inst::Ret]),
        );

        let mk = |addr| ChainItem::Gadget { addr, junk_pops: 0, op: GadgetOp::Unclassified };
        let chain = Chain {
            items: vec![
                mk(pop_rax),
                ChainItem::Imm(99),
                mk(pop_r10),
                ChainItem::Imm(rt.ss_addr),
                mk(pop_r11),
                ChainItem::Imm(8),
                mk(sub_store),
                mk(add_load),
                mk(add_rr),
                mk(load_rsp),
            ],
            switch_patches: vec![],
        };

        let m = materialize(&mut img, &rt, "f", &chain).unwrap();
        assert!(img.in_data(m.chain_addr));
        assert_eq!(m.chain_len, 10 * 8);

        let mut emu = Emulator::new(&img);
        let ret = emu.call_named(&img, "f", &[]).unwrap();
        assert_eq!(ret, 99);
        assert_eq!(emu.mem.read_u64(rt.ss_addr), 0, "stack-switch slot released");
    }

    #[test]
    fn too_short_functions_are_rejected() {
        let mut a = Assembler::new();
        a.inst(Inst::Ret);
        let mut b = raindrop_machine::ImageBuilder::new();
        b.add_function("tiny", a);
        let mut img = b.build().unwrap();
        let cfg = RopConfig::default();
        let rt = RopRuntime::install(&mut img, &cfg);
        let chain = Chain { items: vec![ChainItem::Imm(0)], switch_patches: vec![] };
        assert!(matches!(
            materialize(&mut img, &rt, "tiny", &chain),
            Err(RewriteError::FunctionTooShort { .. })
        ));
    }
}
