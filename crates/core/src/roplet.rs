//! Roplets: the rewriter's intermediate representation (§IV-B1).
//!
//! The translation stage turns every original instruction into one (or a
//! few) *roplets* — basic operations annotated with liveness facts — and the
//! chain-crafting stage lowers roplets to gadgets. The classification below
//! follows the eight kinds the paper enumerates; RM64 has no RIP-relative
//! addressing (globals are reached through absolute addresses already), so
//! the "instruction pointer reference" kind exists but is never produced by
//! the classifier.

use raindrop_machine::{Inst, Reg, RegSet};
use serde::{Deserialize, Serialize};

/// The kind of basic operation an original instruction maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RopletKind {
    /// Direct intra-procedural transfer (`jmp`, `j<cc>`).
    IntraTransfer,
    /// Indirect intra-procedural transfer through a switch table.
    SwitchTransfer,
    /// Inter-procedural transfer: direct or indirect call.
    InterCall,
    /// Inter-procedural tail jump (`jmp reg` at function end).
    TailJump,
    /// Function epilogue (`ret`, `leave`).
    Epilogue,
    /// Direct stack access with dedicated primitives (`push`, `pop`).
    DirectStackAccess,
    /// The stack pointer is referenced as a source/destination operand or in
    /// an address computation.
    StackPtrRef,
    /// RIP-relative global access (never produced on RM64; kept for parity
    /// with the paper's taxonomy).
    IpRef,
    /// `mov`-like data movement that is none of the above.
    DataMove,
    /// Arithmetic/logic, comparisons and other flag-producing operations.
    Alu,
}

/// A roplet: the original instruction, its classification and the liveness
/// facts the chain crafter needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roplet {
    /// Address of the original instruction.
    pub addr: u64,
    /// The original instruction.
    pub inst: Inst,
    /// Classification.
    pub kind: RopletKind,
    /// Registers live immediately after the original instruction.
    pub live_after: RegSet,
    /// Whether the condition flags are live immediately after the original
    /// instruction.
    pub flags_live_after: bool,
    /// Registers holding input-derived values immediately before the
    /// instruction (used to place P3).
    pub input_derived: RegSet,
}

/// Classifies an instruction into its roplet kind.
pub fn classify(inst: &Inst) -> RopletKind {
    use Inst::*;
    match inst {
        Jmp(_) | Jcc(..) => RopletKind::IntraTransfer,
        JmpMem(_) => RopletKind::SwitchTransfer,
        JmpReg(_) => RopletKind::TailJump,
        Call(_) | CallReg(_) => RopletKind::InterCall,
        Ret | Hlt | Leave => RopletKind::Epilogue,
        Push(_) | PushI(_) | Pop(_) => RopletKind::DirectStackAccess,
        _ => {
            let touches_sp = inst.regs_read().contains(Reg::Rsp)
                || inst.regs_written().contains(Reg::Rsp)
                || inst.mem_operand().map(|m| m.uses_sp()).unwrap_or(false);
            if touches_sp {
                RopletKind::StackPtrRef
            } else if matches!(
                inst,
                MovRR(..)
                    | MovRI(..)
                    | Load(..)
                    | Store(..)
                    | StoreI(..)
                    | LoadB(..)
                    | LoadSxB(..)
                    | StoreB(..)
                    | Lea(..)
                    | Cmov(..)
                    | Set(..)
                    | XchgRR(..)
                    | XchgRM(..)
            ) {
                RopletKind::DataMove
            } else {
                RopletKind::Alu
            }
        }
    }
}

impl Roplet {
    /// Builds a roplet from an instruction and its annotations.
    pub fn new(
        addr: u64,
        inst: Inst,
        live_after: RegSet,
        flags_live_after: bool,
        input_derived: RegSet,
    ) -> Roplet {
        Roplet { addr, kind: classify(&inst), inst, live_after, flags_live_after, input_derived }
    }

    /// Registers the lowering of this roplet must not clobber: everything
    /// live after the instruction plus the instruction's own operands.
    pub fn protected_regs(&self) -> RegSet {
        self.live_after.union(self.inst.regs_read()).union(self.inst.regs_written())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raindrop_machine::{AluOp, Cond, Mem};

    #[test]
    fn classification_matches_the_papers_taxonomy() {
        assert_eq!(classify(&Inst::Jmp(4)), RopletKind::IntraTransfer);
        assert_eq!(classify(&Inst::Jcc(Cond::E, -4)), RopletKind::IntraTransfer);
        assert_eq!(classify(&Inst::JmpMem(Mem::abs(0x400000))), RopletKind::SwitchTransfer);
        assert_eq!(classify(&Inst::JmpReg(Reg::Rax)), RopletKind::TailJump);
        assert_eq!(classify(&Inst::Call(0)), RopletKind::InterCall);
        assert_eq!(classify(&Inst::CallReg(Reg::R11)), RopletKind::InterCall);
        assert_eq!(classify(&Inst::Ret), RopletKind::Epilogue);
        assert_eq!(classify(&Inst::Leave), RopletKind::Epilogue);
        assert_eq!(classify(&Inst::Push(Reg::Rbp)), RopletKind::DirectStackAccess);
        assert_eq!(classify(&Inst::Pop(Reg::Rbp)), RopletKind::DirectStackAccess);
        assert_eq!(
            classify(&Inst::MovRR(Reg::Rbp, Reg::Rsp)),
            RopletKind::StackPtrRef,
            "reading RSP as a source operand"
        );
        assert_eq!(
            classify(&Inst::Load(Reg::Rax, Mem::base_disp(Reg::Rsp, 8))),
            RopletKind::StackPtrRef,
            "RSP used in an address computation"
        );
        assert_eq!(
            classify(&Inst::AluI(AluOp::Sub, Reg::Rsp, 32)),
            RopletKind::StackPtrRef,
            "altering RSP"
        );
        assert_eq!(classify(&Inst::MovRR(Reg::Rax, Reg::Rbx)), RopletKind::DataMove);
        assert_eq!(classify(&Inst::Load(Reg::Rax, Mem::base(Reg::Rdi))), RopletKind::DataMove);
        assert_eq!(classify(&Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rbx)), RopletKind::Alu);
        assert_eq!(classify(&Inst::Cmp(Reg::Rax, Reg::Rbx)), RopletKind::Alu);
    }

    #[test]
    fn protected_regs_cover_operands_and_live_set() {
        let r = Roplet::new(
            0x1000,
            Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rbx),
            RegSet::from_regs([Reg::Rdi]),
            false,
            RegSet::EMPTY,
        );
        assert!(r.protected_regs().contains(Reg::Rax));
        assert!(r.protected_regs().contains(Reg::Rbx));
        assert!(r.protected_regs().contains(Reg::Rdi));
        assert!(!r.protected_regs().contains(Reg::R11));
        assert_eq!(r.kind, RopletKind::Alu);
    }
}
