//! End-to-end rewriter tests: a matrix of obfuscation configurations applied
//! to a battery of compiler-shaped functions, each checked for behavioural
//! equivalence against the original via the differential verifier, plus
//! failure-classification and runtime-protocol checks.

use proptest::prelude::*;
use raindrop::{
    equivalent, FailureClass, P3Variant, RewriteError, Rewriter, RopConfig, RopRuntime, TestCase,
    Verdict,
};
use raindrop_machine::{AluOp, Assembler, Cond, Emulator, Image, ImageBuilder, Inst, Mem, Reg};

// --- function zoo -----------------------------------------------------------

/// A common arithmetic tail appended to the smaller zoo functions so that
/// every body is comfortably larger than the 60-byte pivot stub (the same
/// size gate the paper applies to the 119 too-short coreutils functions).
fn tail(a: &mut Assembler) {
    a.inst(Inst::MulI(Reg::Rax, Reg::Rax, 5));
    a.inst(Inst::AluI(AluOp::Add, Reg::Rax, 9));
    a.inst(Inst::AluI(AluOp::Xor, Reg::Rax, 0x77));
    a.inst(Inst::MovRI(Reg::Rcx, 0x1234));
    a.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rcx));
    a.inst(Inst::Shl(Reg::Rax, 1));
    a.inst(Inst::Not(Reg::Rax));
    a.inst(Inst::AluI(AluOp::Sub, Reg::Rax, 3));
    a.inst(Inst::MovRI(Reg::Rdx, 0x0ff0));
    a.inst(Inst::Alu(AluOp::Xor, Reg::Rax, Reg::Rdx));
}

/// Host-side reference of [`tail`].
fn ref_tail(v: u64) -> u64 {
    let v = v.wrapping_mul(5).wrapping_add(9) ^ 0x77;
    let v = v.wrapping_add(0x1234) << 1;
    (!v).wrapping_sub(3) ^ 0x0ff0
}

/// max(a, b) * 3 with a diamond and a frame.
fn f_diamond(a: &mut Assembler) {
    let else_l = a.new_label();
    let join = a.new_label();
    a.inst(Inst::Push(Reg::Rbp));
    a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
    a.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi));
    a.jcc(Cond::B, else_l);
    a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
    a.jmp(join);
    a.bind(else_l);
    a.inst(Inst::MovRR(Reg::Rax, Reg::Rsi));
    a.bind(join);
    a.inst(Inst::MulI(Reg::Rax, Reg::Rax, 3));
    tail(a);
    a.inst(Inst::Leave);
    a.inst(Inst::Ret);
}
fn ref_diamond(a: u64, b: u64) -> u64 {
    ref_tail(a.max(b).wrapping_mul(3))
}

/// An equality branch (the shape P2 protects): f(a, b) = a == b ? 0x11 : a ^ b.
fn f_equality(a: &mut Assembler) {
    let eq = a.new_label();
    let done = a.new_label();
    a.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi));
    a.jcc(Cond::E, eq);
    a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
    a.inst(Inst::Alu(AluOp::Xor, Reg::Rax, Reg::Rsi));
    a.jmp(done);
    a.bind(eq);
    a.inst(Inst::MovRI(Reg::Rax, 0x11));
    a.bind(done);
    tail(a);
    a.inst(Inst::Ret);
}
fn ref_equality(a: u64, b: u64) -> u64 {
    ref_tail(if a == b { 0x11 } else { a ^ b })
}

/// A loop with memory traffic through the stack frame: a small FNV-style
/// hash of the argument, one byte at a time.
fn f_hash_loop(a: &mut Assembler) {
    let head = a.new_label();
    let done = a.new_label();
    a.inst(Inst::Push(Reg::Rbp));
    a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
    a.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16));
    a.inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi));
    a.inst(Inst::MovRI(Reg::Rax, 0xcbf29ce4_84222325u64 as i64));
    a.inst(Inst::MovRI(Reg::Rcx, 0));
    a.bind(head);
    a.inst(Inst::CmpI(Reg::Rcx, 8));
    a.jcc(Cond::Ae, done);
    a.inst(Inst::Load(Reg::Rdx, Mem::base_disp(Reg::Rbp, -8)));
    a.inst(Inst::ShrR(Reg::Rdx, Reg::Rcx));
    a.inst(Inst::AluI(AluOp::And, Reg::Rdx, 0xff));
    a.inst(Inst::Alu(AluOp::Xor, Reg::Rax, Reg::Rdx));
    a.inst(Inst::MulI(Reg::Rax, Reg::Rax, 0x0100_0193));
    a.inst(Inst::AluI(AluOp::Add, Reg::Rcx, 1));
    a.jmp(head);
    a.bind(done);
    a.inst(Inst::Leave);
    a.inst(Inst::Ret);
}
fn ref_hash_loop(x: u64) -> u64 {
    let mut h = 0xcbf29ce4_84222325u64;
    for i in 0..8u64 {
        // The loop reads the full 64-bit value and shifts by `i` — a shift
        // count in bits, mirroring the assembly (shr by rcx = i).
        let byte = (x >> i) & 0xff;
        h ^= byte;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A function that calls a native (non-rewritten) helper.
fn build_caller_image() -> Image {
    let mut helper = Assembler::new();
    helper
        .inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
        .inst(Inst::MulI(Reg::Rax, Reg::Rax, 7))
        .inst(Inst::Ret);
    let mut caller = Assembler::new();
    caller.inst(Inst::Push(Reg::Rbp));
    caller.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
    caller.inst(Inst::AluI(AluOp::Add, Reg::Rdi, 1));
    caller.call_sym("helper");
    caller.inst(Inst::AluI(AluOp::Add, Reg::Rax, 100));
    tail(&mut caller);
    caller.inst(Inst::Leave);
    caller.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("caller", caller);
    b.add_function("helper", helper);
    b.build().unwrap()
}
fn ref_caller(x: u64) -> u64 {
    ref_tail(x.wrapping_add(1).wrapping_mul(7).wrapping_add(100))
}

/// Recursive factorial — exercises the stack-switching array with nested
/// activations of the *same* ROP chain.
fn f_factorial(a: &mut Assembler) {
    let base = a.new_label();
    a.inst(Inst::Push(Reg::Rbp));
    a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
    a.inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16));
    a.inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi));
    a.inst(Inst::CmpI(Reg::Rdi, 1));
    a.jcc(Cond::Be, base);
    a.inst(Inst::AluI(AluOp::Sub, Reg::Rdi, 1));
    a.call_sym("fact");
    a.inst(Inst::Load(Reg::Rcx, Mem::base_disp(Reg::Rbp, -8)));
    a.inst(Inst::Mul(Reg::Rax, Reg::Rcx));
    a.inst(Inst::Leave);
    a.inst(Inst::Ret);
    a.bind(base);
    a.inst(Inst::MovRI(Reg::Rax, 1));
    a.inst(Inst::Leave);
    a.inst(Inst::Ret);
}
fn ref_factorial(n: u64) -> u64 {
    (1..=n.max(1)).product()
}

fn single_function_image(name: &str, build: impl FnOnce(&mut Assembler)) -> Image {
    let mut asm = Assembler::new();
    build(&mut asm);
    let mut b = ImageBuilder::new();
    b.add_function(name, asm);
    b.build().unwrap()
}

/// All the configurations the matrix exercises, labelled.
fn config_matrix() -> Vec<(&'static str, RopConfig)> {
    let mut p2_only = RopConfig::plain();
    p2_only.p2 = true;
    let mut confusion_only = RopConfig::plain();
    confusion_only.gadget_confusion = true;
    let mut p3_for = RopConfig::ropk(1.0);
    p3_for.p3_variant = P3Variant::ForLoop;
    let mut p3_array = RopConfig::ropk(1.0);
    p3_array.p3_variant = P3Variant::ArrayUpdate;
    vec![
        ("plain", RopConfig::plain()),
        ("p1_only", RopConfig::ropk(0.0)),
        ("p2_only", p2_only),
        ("confusion_only", confusion_only),
        ("p3_for_k100", p3_for),
        ("p3_array_k100", p3_array),
        ("ropk_050", RopConfig::ropk(0.5)),
        ("full", RopConfig::full()),
    ]
}

fn arg_cases() -> Vec<TestCase> {
    [
        [0u64, 0u64],
        [1, 0],
        [0, 1],
        [5, 5],
        [123, 45],
        [u64::MAX, 1],
        [0xdead_beef, 0xdead_beef],
        [7, u64::MAX],
    ]
    .iter()
    .map(|a| TestCase::args(a))
    .collect()
}

// --- the matrix ---------------------------------------------------------------

#[test]
fn every_configuration_preserves_the_diamond_semantics() {
    let original = single_function_image("f", f_diamond);
    for (label, config) in config_matrix() {
        let mut obf = original.clone();
        let mut rw = Rewriter::new(config);
        let report = rw.rewrite_function(&mut obf, "f").unwrap_or_else(|e| {
            panic!("{label}: rewrite failed: {e}");
        });
        assert!(report.chain_len > 0);
        assert!(equivalent(&original, &obf, "f", &arg_cases()), "{label} diverges");
        // Spot-check against the host-side reference too.
        let mut emu = Emulator::new(&obf);
        assert_eq!(emu.call_named(&obf, "f", &[9, 4]).unwrap(), ref_diamond(9, 4), "{label}");
    }
}

#[test]
fn every_configuration_preserves_the_equality_branch_semantics() {
    let original = single_function_image("f", f_equality);
    for (label, config) in config_matrix() {
        let mut obf = original.clone();
        let mut rw = Rewriter::new(config.clone());
        let report = rw.rewrite_function(&mut obf, "f").unwrap();
        assert!(equivalent(&original, &obf, "f", &arg_cases()), "{label} diverges");
        if config.p2 {
            assert!(report.stats.p2_sites > 0, "{label}: P2 must fire on an equality branch");
        }
        let mut emu = Emulator::new(&obf);
        assert_eq!(emu.call_named(&obf, "f", &[3, 3]).unwrap(), ref_equality(3, 3), "{label}");
        assert_eq!(emu.call_named(&obf, "f", &[3, 5]).unwrap(), ref_equality(3, 5), "{label}");
    }
}

#[test]
fn every_configuration_preserves_the_hash_loop_semantics() {
    let original = single_function_image("f", f_hash_loop);
    for (label, config) in config_matrix() {
        let mut obf = original.clone();
        let mut rw = Rewriter::new(config);
        rw.rewrite_function(&mut obf, "f").unwrap();
        for x in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
            let mut e_orig = Emulator::new(&original);
            let mut e_obf = Emulator::new(&obf);
            let want = e_orig.call_named(&original, "f", &[x]).unwrap();
            assert_eq!(want, ref_hash_loop(x));
            assert_eq!(e_obf.call_named(&obf, "f", &[x]).unwrap(), want, "{label}, x = {x:#x}");
        }
    }
}

#[test]
fn rop_code_calls_native_helpers_through_the_stack_switch() {
    let original = build_caller_image();
    for (label, config) in config_matrix() {
        let mut obf = original.clone();
        let mut rw = Rewriter::new(config);
        rw.rewrite_function(&mut obf, "caller").unwrap();
        for x in [0u64, 3, 999] {
            let mut emu = Emulator::new(&obf);
            assert_eq!(emu.call_named(&obf, "caller", &[x]).unwrap(), ref_caller(x), "{label}");
        }
    }
}

#[test]
fn recursive_rop_functions_nest_activations_correctly() {
    let original = single_function_image("fact", f_factorial);
    for (label, config) in [("plain", RopConfig::plain()), ("full", RopConfig::full())] {
        let mut obf = original.clone();
        let mut rw = Rewriter::new(config);
        rw.rewrite_function(&mut obf, "fact").unwrap();
        for n in [0u64, 1, 2, 5, 10] {
            let mut emu = Emulator::new(&obf);
            emu.set_budget(1_000_000_000);
            assert_eq!(
                emu.call_named(&obf, "fact", &[n]).unwrap(),
                ref_factorial(n),
                "{label}, n = {n}"
            );
        }
    }
}

#[test]
fn rewritten_text_keeps_the_original_function_symbol_but_replaces_its_body() {
    let original = single_function_image("f", f_diamond);
    let mut obf = original.clone();
    let mut rw = Rewriter::new(RopConfig::full());
    let report = rw.rewrite_function(&mut obf, "f").unwrap();
    let func = obf.function("f").unwrap();
    assert_eq!(func.addr, original.function("f").unwrap().addr, "entry address is stable");
    // The first bytes of the body now differ (the pivot stub).
    let orig_bytes = original.function_bytes("f").unwrap();
    let new_bytes = obf.function_bytes("f").unwrap();
    assert_ne!(orig_bytes, new_bytes);
    // The chain lives in .data.
    assert!(obf.in_data(report.chain_addr));
    assert!(report.chain_len >= 8);
    // The obfuscated image grew: artificial gadgets + chain.
    assert!(obf.text.len() > original.text.len());
    assert!(obf.data.len() > original.data.len());
}

#[test]
fn chain_sizes_grow_with_the_p3_fraction() {
    let original = single_function_image("f", f_hash_loop);
    let mut sizes = Vec::new();
    for k in [0.0, 0.5, 1.0] {
        let mut obf = original.clone();
        let mut rw = Rewriter::new(RopConfig::ropk(k).with_seed(77));
        let report = rw.rewrite_function(&mut obf, "f").unwrap();
        sizes.push((k, report.chain_len, report.stats.p3_sites));
    }
    assert_eq!(sizes[0].2, 0, "k = 0 inserts no P3 site");
    assert!(sizes[2].2 >= sizes[1].2, "more sites at higher k");
    assert!(sizes[2].1 > sizes[0].1, "P3 instances enlarge the chain");
}

#[test]
fn gadget_confusion_reports_sites_and_keeps_equivalence() {
    let original = single_function_image("f", f_equality);
    let mut with = original.clone();
    let mut config = RopConfig::plain();
    config.gadget_confusion = true;
    let mut rw = Rewriter::new(config);
    let report = rw.rewrite_function(&mut with, "f").unwrap();
    assert!(report.stats.confusion_sites > 0, "confusion must fire somewhere");
    assert!(equivalent(&original, &with, "f", &arg_cases()));
}

#[test]
fn different_seeds_produce_different_chains_with_identical_behaviour() {
    let original = single_function_image("f", f_diamond);
    let mut obf_a = original.clone();
    let mut obf_b = original.clone();
    Rewriter::new(RopConfig::full().with_seed(1)).rewrite_function(&mut obf_a, "f").unwrap();
    Rewriter::new(RopConfig::full().with_seed(2)).rewrite_function(&mut obf_b, "f").unwrap();
    assert_ne!(obf_a.data, obf_b.data, "chains are diversified across seeds");
    assert!(equivalent(&original, &obf_a, "f", &arg_cases()));
    assert!(equivalent(&original, &obf_b, "f", &arg_cases()));
}

#[test]
fn same_seed_is_fully_reproducible() {
    let original = single_function_image("f", f_diamond);
    let mut obf_a = original.clone();
    let mut obf_b = original.clone();
    Rewriter::new(RopConfig::full().with_seed(9)).rewrite_function(&mut obf_a, "f").unwrap();
    Rewriter::new(RopConfig::full().with_seed(9)).rewrite_function(&mut obf_b, "f").unwrap();
    assert_eq!(obf_a.text, obf_b.text);
    assert_eq!(obf_a.data, obf_b.data);
}

// --- failure classification and the verifier ------------------------------------

#[test]
fn functions_shorter_than_the_pivot_stub_are_skipped_with_the_right_class() {
    let original = single_function_image("tiny", |a| {
        a.inst(Inst::MovRI(Reg::Rax, 1));
        a.inst(Inst::Ret);
    });
    let mut obf = original.clone();
    let mut rw = Rewriter::new(RopConfig::plain());
    let err = rw.rewrite_function(&mut obf, "tiny").unwrap_err();
    assert!(matches!(err, RewriteError::FunctionTooShort { .. }));
    assert_eq!(err.failure_class(), FailureClass::TooShort);
}

#[test]
fn missing_functions_are_an_image_failure() {
    let original = single_function_image("f", f_diamond);
    let mut obf = original.clone();
    let mut rw = Rewriter::new(RopConfig::plain());
    let err = rw.rewrite_function(&mut obf, "nope").unwrap_err();
    assert!(matches!(err.failure_class(), FailureClass::CfgReconstruction | FailureClass::Other));
}

#[test]
fn the_verifier_detects_a_broken_rewrite() {
    // Simulate a miscompilation by patching the rewritten image's chain.
    let original = single_function_image("f", f_diamond);
    let mut obf = original.clone();
    let mut rw = Rewriter::new(RopConfig::plain());
    let report = rw.rewrite_function(&mut obf, "f").unwrap();
    // Corrupt one immediate slot in the middle of the chain.
    let off = (report.chain_addr - obf.data_base) as usize + report.chain_len / 2;
    obf.data[off] ^= 0xff;
    let cases = arg_cases();
    let verdicts: Vec<Verdict> =
        cases.iter().map(|c| raindrop::check_case(&original, &obf, "f", c)).collect();
    assert!(
        verdicts.iter().any(|v| !v.is_match()),
        "corrupting the chain must be observable: {verdicts:?}"
    );
}

#[test]
fn verify_batch_generates_and_runs_cases() {
    let original = single_function_image("f", f_equality);
    let mut obf = original.clone();
    let mut rw = Rewriter::new(RopConfig::full());
    rw.rewrite_function(&mut obf, "f").unwrap();
    let verdicts = raindrop::verify_batch(&original, &obf, "f", &arg_cases());
    assert_eq!(verdicts.len(), arg_cases().len());
    assert!(verdicts.iter().all(Verdict::is_match));
}

// --- runtime protocol -------------------------------------------------------------

#[test]
fn the_runtime_is_installed_once_and_reused() {
    let mut img = single_function_image("f", f_diamond);
    let cfg = RopConfig::default();
    let rt1 = RopRuntime::install(&mut img, &cfg);
    let text_len = img.text.len();
    let data_len = img.data.len();
    let rt2 = RopRuntime::install(&mut img, &cfg);
    assert_eq!(rt1, rt2, "installation is idempotent");
    assert_eq!(img.text.len(), text_len);
    assert_eq!(img.data.len(), data_len);
    assert!(img.in_data(rt1.ss_addr));
    assert!(img.in_data(rt1.spill_addr));
    assert!(img.in_text(rt1.func_ret_gadget));
}

#[test]
fn the_pivot_stub_length_constant_matches_the_emitted_stub() {
    let mut img = single_function_image("f", f_diamond);
    let rt = RopRuntime::install(&mut img, &RopConfig::default());
    let stub = rt.pivot_stub(0x40_1234);
    assert_eq!(stub.len() as u64, RopRuntime::pivot_stub_len());
}

#[test]
fn spill_slots_are_consecutive_and_bounded() {
    let mut img = single_function_image("f", f_diamond);
    let cfg = RopConfig { spill_slots: 4, ..RopConfig::default() };
    let rt = RopRuntime::install(&mut img, &cfg);
    for i in 0..4 {
        assert_eq!(rt.spill_slot(i), rt.spill_addr + 8 * i as u64);
    }
    let res = std::panic::catch_unwind(|| rt.spill_slot(4));
    assert!(res.is_err(), "out-of-range spill slots are rejected");
}

// --- property test: random straight-line + branch functions ------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary small arithmetic functions (straight-line ALU on the two
    /// arguments plus one comparison-driven diamond) survive full-strength
    /// rewriting for random inputs.
    #[test]
    fn random_arithmetic_functions_survive_full_rewriting(
        ops in prop::collection::vec((0u8..5, any::<i32>()), 1..10),
        use_eq_branch in any::<bool>(),
        inputs in prop::collection::vec((any::<u64>(), any::<u64>()), 3),
        seed in any::<u64>(),
    ) {
        let build = |a: &mut Assembler| {
            a.inst(Inst::Push(Reg::Rbp));
            a.inst(Inst::MovRR(Reg::Rbp, Reg::Rsp));
            a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi));
            for (op, imm) in &ops {
                let inst = match op % 5 {
                    0 => Inst::AluI(AluOp::Add, Reg::Rax, *imm),
                    1 => Inst::AluI(AluOp::Xor, Reg::Rax, *imm),
                    2 => Inst::MulI(Reg::Rax, Reg::Rax, (*imm).max(1)),
                    3 => Inst::Alu(AluOp::Sub, Reg::Rax, Reg::Rsi),
                    _ => Inst::Shl(Reg::Rax, (*imm as u8) % 16),
                };
                a.inst(inst);
            }
            if use_eq_branch {
                let skip = a.new_label();
                a.inst(Inst::Cmp(Reg::Rax, Reg::Rsi));
                a.jcc(Cond::Ne, skip);
                a.inst(Inst::AluI(AluOp::Add, Reg::Rax, 0x1111));
                a.bind(skip);
            }
            tail(a);
            a.inst(Inst::Leave);
            a.inst(Inst::Ret);
        };
        let original = single_function_image("f", build);
        let mut obf = original.clone();
        let mut rw = Rewriter::new(RopConfig::full().with_seed(seed));
        rw.rewrite_function(&mut obf, "f").unwrap();
        for (x, y) in &inputs {
            let mut e1 = Emulator::new(&original);
            let mut e2 = Emulator::new(&obf);
            e2.set_budget(500_000_000);
            let want = e1.call_named(&original, "f", &[*x, *y]).unwrap();
            let got = e2.call_named(&obf, "f", &[*x, *y]).unwrap();
            prop_assert_eq!(want, got, "f({}, {})", x, y);
        }
    }
}
