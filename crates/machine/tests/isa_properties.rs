//! Property-based tests over the RM64 ISA: encoding round-trips, flag
//! semantics against a bit-precise reference, register-set algebra, memory
//! model behaviour and assembler layout invariants.
//!
//! These invariants are what the whole reproduction stands on: the gadget
//! scanner and the ROP-aware attacker both re-decode bytes at arbitrary
//! offsets, the chain crafter relies on exact encoded lengths, and the
//! P1/P2 predicates rely on x86-64-faithful flag behaviour.

use proptest::prelude::*;
use raindrop_machine::{
    decode, decode_all, encode, encode_all, encoded_len, AluOp, Assembler, Cond, Emulator, Flags,
    ImageBuilder, Inst, Mem, Memory, Reg, RegSet,
};

// --- strategies -------------------------------------------------------------

fn any_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::ALL[i])
}

fn any_non_sp_reg() -> impl Strategy<Value = Reg> {
    any_reg().prop_filter("not rsp", |r| !r.is_sp())
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

fn any_mem() -> impl Strategy<Value = Mem> {
    (any_reg(), any_reg(), 0usize..4, any::<i32>(), any::<bool>(), any::<bool>()).prop_map(
        |(base, index, scale_idx, disp, with_base, with_index)| {
            let scale = [1u8, 2, 4, 8][scale_idx];
            match (with_base, with_index) {
                (true, true) => Mem::base_index(base, index, scale, disp),
                (true, false) => Mem::base_disp(base, disp),
                _ => Mem::abs(disp),
            }
        },
    )
}

/// A strategy producing every instruction shape the encoder supports.
fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Hlt),
        Just(Inst::Ret),
        Just(Inst::Leave),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::MovRR(a, b)),
        (any_reg(), any::<i64>()).prop_map(|(a, v)| Inst::MovRI(a, v)),
        (any_reg(), any_mem()).prop_map(|(r, m)| Inst::Load(r, m)),
        (any_mem(), any_reg()).prop_map(|(m, r)| Inst::Store(m, r)),
        (any_mem(), any::<i32>()).prop_map(|(m, v)| Inst::StoreI(m, v)),
        (any_reg(), any_mem()).prop_map(|(r, m)| Inst::LoadB(r, m)),
        (any_reg(), any_mem()).prop_map(|(r, m)| Inst::LoadSxB(r, m)),
        (any_mem(), any_reg()).prop_map(|(m, r)| Inst::StoreB(m, r)),
        (any_reg(), any_mem()).prop_map(|(r, m)| Inst::Lea(r, m)),
        any_reg().prop_map(Inst::Push),
        any::<i32>().prop_map(Inst::PushI),
        any_reg().prop_map(Inst::Pop),
        (any_alu_op(), any_reg(), any_reg()).prop_map(|(op, a, b)| Inst::Alu(op, a, b)),
        (any_alu_op(), any_reg(), any::<i32>()).prop_map(|(op, a, v)| Inst::AluI(op, a, v)),
        (any_alu_op(), any_reg(), any_mem()).prop_map(|(op, a, m)| Inst::AluM(op, a, m)),
        (any_alu_op(), any_mem(), any_reg()).prop_map(|(op, m, r)| Inst::AluStore(op, m, r)),
        any_reg().prop_map(Inst::Neg),
        any_reg().prop_map(Inst::Not),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::Mul(a, b)),
        (any_reg(), any_reg(), any::<i32>()).prop_map(|(a, b, v)| Inst::MulI(a, b, v)),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::Div(a, b)),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::Rem(a, b)),
        (any_reg(), 0u8..64).prop_map(|(r, i)| Inst::Shl(r, i)),
        (any_reg(), 0u8..64).prop_map(|(r, i)| Inst::Shr(r, i)),
        (any_reg(), 0u8..64).prop_map(|(r, i)| Inst::Sar(r, i)),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::ShlR(a, b)),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::ShrR(a, b)),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::Cmp(a, b)),
        (any_reg(), any::<i32>()).prop_map(|(a, v)| Inst::CmpI(a, v)),
        (any_mem(), any::<i32>()).prop_map(|(m, v)| Inst::CmpMI(m, v)),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::Test(a, b)),
        (any_reg(), any::<i32>()).prop_map(|(a, v)| Inst::TestI(a, v)),
        (any_cond(), any_reg(), any_reg()).prop_map(|(c, a, b)| Inst::Cmov(c, a, b)),
        (any_cond(), any_reg()).prop_map(|(c, r)| Inst::Set(c, r)),
        any::<i32>().prop_map(Inst::Jmp),
        any_reg().prop_map(Inst::JmpReg),
        any_mem().prop_map(Inst::JmpMem),
        (any_cond(), any::<i32>()).prop_map(|(c, v)| Inst::Jcc(c, v)),
        any::<i32>().prop_map(Inst::Call),
        any_reg().prop_map(Inst::CallReg),
        (any_reg(), any_reg()).prop_map(|(a, b)| Inst::XchgRR(a, b)),
        (any_reg(), any_mem()).prop_map(|(r, m)| Inst::XchgRM(r, m)),
    ]
}

// --- encoding ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → decode is the identity on instructions, and the decoder
    /// consumes exactly the encoded length.
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let bytes = encode(&inst);
        prop_assert_eq!(bytes.len(), encoded_len(&inst));
        let (decoded, len) = decode(&bytes).expect("decodes");
        prop_assert_eq!(len, bytes.len());
        prop_assert_eq!(decoded, inst);
    }

    /// decode_all over a concatenation recovers the original sequence with
    /// correct byte offsets.
    #[test]
    fn decode_all_recovers_instruction_streams(insts in prop::collection::vec(any_inst(), 1..24)) {
        let bytes = encode_all(&insts);
        let decoded = decode_all(&bytes).expect("whole stream decodes");
        prop_assert_eq!(decoded.len(), insts.len());
        let mut expected_off = 0usize;
        for ((off, inst), original) in decoded.iter().zip(&insts) {
            prop_assert_eq!(*off, expected_off);
            prop_assert_eq!(inst, original);
            expected_off += encoded_len(original);
        }
        prop_assert_eq!(expected_off, bytes.len());
    }

    /// `ret` is a single byte everywhere (the property that makes ret-oriented
    /// gadget scanning — and gadget confusion — meaningful).
    #[test]
    fn ret_is_always_one_byte(prefix in prop::collection::vec(any_inst(), 0..8)) {
        let mut bytes = encode_all(&prefix);
        let ret_off = bytes.len();
        bytes.extend_from_slice(&encode(&Inst::Ret));
        prop_assert_eq!(bytes.len(), ret_off + 1);
        prop_assert_eq!(bytes[ret_off], raindrop_machine::OP_RET);
    }

    /// Register read/write sets never contain more than the architectural
    /// register count and `regs_written` of a pure read never includes a
    /// memory base register.
    #[test]
    fn register_use_def_sets_are_well_formed(inst in any_inst()) {
        let reads = inst.regs_read();
        let writes = inst.regs_written();
        prop_assert!(reads.len() <= 16);
        prop_assert!(writes.len() <= 16);
        // Pure compares/tests/jumps never write a general-purpose register.
        if matches!(inst, Inst::Cmp(..) | Inst::CmpI(..) | Inst::CmpMI(..) | Inst::Test(..)
            | Inst::TestI(..) | Inst::Jmp(_) | Inst::Jcc(..) | Inst::JmpReg(_) | Inst::JmpMem(_)
            | Inst::Store(..) | Inst::StoreI(..) | Inst::StoreB(..) | Inst::Nop | Inst::Hlt) {
            prop_assert!(writes.difference(RegSet::from_regs([Reg::Rsp])).is_empty(),
                "{:?} writes {:?}", inst, writes);
        }
    }
}

// --- flags vs. a bit-precise x86-64 reference --------------------------------

/// Reference add with carry, computing CF/ZF/SF/OF the x86-64 way.
fn ref_add(a: u64, b: u64, cin: bool) -> (u64, bool, bool, bool, bool) {
    let r = a.wrapping_add(b).wrapping_add(cin as u64);
    let cf = (a as u128 + b as u128 + cin as u128) > u64::MAX as u128;
    let zf = r == 0;
    let sf = (r as i64) < 0;
    let of = ((a ^ r) & (b ^ r) & 0x8000_0000_0000_0000) != 0;
    (r, cf, zf, sf, of)
}

/// Reference subtract with borrow.
fn ref_sub(a: u64, b: u64, bin: bool) -> (u64, bool, bool, bool, bool) {
    let r = a.wrapping_sub(b).wrapping_sub(bin as u64);
    let cf = (a as u128) < (b as u128 + bin as u128);
    let zf = r == 0;
    let sf = (r as i64) < 0;
    let of = ((a ^ b) & (a ^ r) & 0x8000_0000_0000_0000) != 0;
    (r, cf, zf, sf, of)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn flag_add_matches_x86(a in any::<u64>(), b in any::<u64>(), cin in any::<bool>()) {
        let mut f = Flags::cleared();
        let r = f.set_add(a, b, cin);
        let (er, ecf, ezf, esf, eof) = ref_add(a, b, cin);
        prop_assert_eq!(r, er);
        prop_assert_eq!((f.cf, f.zf, f.sf, f.of), (ecf, ezf, esf, eof));
    }

    #[test]
    fn flag_sub_matches_x86(a in any::<u64>(), b in any::<u64>(), bin in any::<bool>()) {
        let mut f = Flags::cleared();
        let r = f.set_sub(a, b, bin);
        let (er, ecf, ezf, esf, eof) = ref_sub(a, b, bin);
        prop_assert_eq!(r, er);
        prop_assert_eq!((f.cf, f.zf, f.sf, f.of), (ecf, ezf, esf, eof));
    }

    /// `neg` sets CF exactly when the operand was non-zero: the property the
    /// Figure 1 branch encoding (and P2's notZero) is built on.
    #[test]
    fn flag_neg_carry_tracks_nonzero(a in any::<u64>()) {
        let mut f = Flags::cleared();
        let r = f.set_neg(a);
        prop_assert_eq!(r, (a as i64).wrapping_neg() as u64);
        prop_assert_eq!(f.cf, a != 0);
        prop_assert_eq!(f.zf, a == 0);
    }

    /// Signed/unsigned comparison conditions evaluated on sub-flags agree
    /// with the native Rust comparisons.
    #[test]
    fn conditions_after_compare_match_reference(a in any::<u64>(), b in any::<u64>()) {
        let mut f = Flags::cleared();
        f.set_sub(a, b, false);
        prop_assert_eq!(Cond::E.eval(f), a == b);
        prop_assert_eq!(Cond::Ne.eval(f), a != b);
        prop_assert_eq!(Cond::B.eval(f), a < b);
        prop_assert_eq!(Cond::Be.eval(f), a <= b);
        prop_assert_eq!(Cond::A.eval(f), a > b);
        prop_assert_eq!(Cond::Ae.eval(f), a >= b);
        prop_assert_eq!(Cond::L.eval(f), (a as i64) < (b as i64));
        prop_assert_eq!(Cond::Le.eval(f), (a as i64) <= (b as i64));
        prop_assert_eq!(Cond::G.eval(f), (a as i64) > (b as i64));
        prop_assert_eq!(Cond::Ge.eval(f), (a as i64) >= (b as i64));
    }

    /// Condition negation flips evaluation for every flag combination.
    #[test]
    fn cond_negation_flips(bits in 0u8..16) {
        let f = Flags::from_bits(bits);
        for c in Cond::ALL {
            prop_assert_eq!(c.eval(f), !c.negate().eval(f));
        }
    }

    #[test]
    fn cond_index_roundtrip(idx in 0u8..14) {
        let c = Cond::from_index(idx).unwrap();
        prop_assert_eq!(c.index(), idx);
    }
}

// --- register sets -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn regset_algebra(xs in prop::collection::vec(any_reg(), 0..16),
                      ys in prop::collection::vec(any_reg(), 0..16)) {
        let a = RegSet::from_regs(xs.iter().copied());
        let b = RegSet::from_regs(ys.iter().copied());
        // Union/intersection/difference agree with membership.
        for r in Reg::ALL {
            prop_assert_eq!(a.union(b).contains(r), a.contains(r) || b.contains(r));
            prop_assert_eq!(a.intersection(b).contains(r), a.contains(r) && b.contains(r));
            prop_assert_eq!(a.difference(b).contains(r), a.contains(r) && !b.contains(r));
        }
        // Iteration visits exactly the members.
        let via_iter = RegSet::from_regs(a.iter());
        prop_assert_eq!(via_iter, a);
        let len = a.len();
        prop_assert_eq!(len, Reg::ALL.iter().filter(|r| a.contains(**r)).count());
        prop_assert_eq!(a.is_empty(), len == 0);
    }

    #[test]
    fn regset_insert_remove(r in any_reg(), seed in prop::collection::vec(any_reg(), 0..10)) {
        let mut s = RegSet::from_regs(seed);
        let was_present = s.contains(r);
        let inserted = s.insert(r);
        prop_assert_eq!(inserted, !was_present);
        prop_assert!(s.contains(r));
        let removed = s.remove(r);
        prop_assert!(removed);
        prop_assert!(!s.contains(r));
    }

    #[test]
    fn reg_index_roundtrip(r in any_reg()) {
        prop_assert_eq!(Reg::from_index(r.index() as u8), Some(r));
        prop_assert!(!r.name().is_empty());
    }
}

// --- memory model ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn memory_u64_roundtrips_and_is_little_endian(addr in 0u64..0x10_0000, v in any::<u64>()) {
        let mut m = Memory::new();
        m.write_u64(addr, v);
        prop_assert_eq!(m.read_u64(addr), v);
        // Byte-wise view is little-endian.
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            prop_assert_eq!(m.read_u8(addr + i as u64), *b);
        }
    }

    #[test]
    fn memory_bulk_and_scalar_access_agree(addr in 0u64..0x10_0000,
                                            data in prop::collection::vec(any::<u8>(), 1..256)) {
        let mut m = Memory::new();
        m.write_bytes(addr, &data);
        let mut back = vec![0u8; data.len()];
        m.read_bytes(addr, &mut back);
        prop_assert_eq!(&back, &data);
        for (i, b) in data.iter().enumerate() {
            prop_assert_eq!(m.read_u8(addr + i as u64), *b);
        }
    }

    #[test]
    fn unwritten_memory_reads_as_zero(addr in 0u64..0x40_0000) {
        let m = Memory::new();
        prop_assert_eq!(m.read_u64(addr), 0);
        prop_assert_eq!(m.read_u8(addr), 0);
        prop_assert_eq!(m.resident_pages(), 0);
    }

    /// Writes that straddle a page boundary land in both pages correctly.
    #[test]
    fn cross_page_writes_are_consistent(offset_in_page in 4090u64..4096, v in any::<u64>()) {
        let mut m = Memory::new();
        let addr = 8 * 4096 + offset_in_page;
        m.write_u64(addr, v);
        prop_assert_eq!(m.read_u64(addr), v);
        prop_assert!(m.resident_pages() >= 1);
    }
}

// --- assembler / emulator agreement ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A straight-line sequence of register-only arithmetic evaluated by the
    /// emulator matches an interpreter over the same instructions.
    #[test]
    fn straight_line_alu_matches_interpretation(
        ops in prop::collection::vec((any_alu_op(), any_non_sp_reg(), any::<i32>()), 1..20),
        init in any::<u64>(),
    ) {
        // Interpreter over a 16-register file (flags ignored: no Adc/Sbb).
        let ops: Vec<_> = ops
            .into_iter()
            .filter(|(op, _, _)| !op.reads_carry())
            .collect();
        prop_assume!(!ops.is_empty());

        let mut regs = [0u64; 16];
        regs[Reg::Rdi.index()] = init;
        for (op, r, imm) in &ops {
            let a = regs[r.index()];
            let b = *imm as i64 as u64;
            let v = match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                AluOp::Adc | AluOp::Sbb => unreachable!("filtered"),
            };
            regs[r.index()] = v;
        }

        let mut asm = Assembler::new();
        for (op, r, imm) in &ops {
            asm.inst(Inst::AluI(*op, *r, *imm));
        }
        asm.inst(Inst::MovRR(Reg::Rax, ops.last().unwrap().1));
        asm.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("f", asm);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        let got = emu.call_named(&img, "f", &[init]).unwrap();
        prop_assert_eq!(got, regs[ops.last().unwrap().1.index()]);
    }

    /// Assembler byte_len matches the built image's function size, and every
    /// encoded function decodes cleanly from its first byte.
    #[test]
    fn assembled_functions_have_consistent_sizes(
        insts in prop::collection::vec(any_inst().prop_filter("no control flow", |i| {
            !i.is_terminator() && !i.is_call() && !matches!(i, Inst::Hlt)
        }), 1..30)
    ) {
        let mut asm = Assembler::new();
        for i in &insts {
            asm.inst(*i);
        }
        asm.inst(Inst::Ret);
        let expected_len = asm.byte_len();
        let mut b = ImageBuilder::new();
        b.add_function("f", asm);
        let img = b.build().unwrap();
        let func = img.function("f").unwrap();
        prop_assert_eq!(func.size as usize, expected_len);
        let bytes = img.function_bytes("f").unwrap();
        let decoded = decode_all(bytes).expect("function body decodes");
        prop_assert_eq!(decoded.len(), insts.len() + 1);
    }
}
