//! Adversarial self-modifying-code tests for the predecoded instruction
//! cache: under any schedule of text writes — host patches between calls,
//! host patches between single steps of a partially-executed function, or
//! guest stores into the instruction stream — an emulator with the icache
//! enabled must stay bit-identical (results, registers, statistics) to one
//! running with `set_icache_enabled(false)`.
//!
//! The hazard under test is a stale predecode: a page's instructions are
//! cached from a previous execution, the text underneath changes, and a
//! later fetch must observe the new bytes because the page's write
//! generation moved on. The synth-level workload classes exercise the same
//! property end-to-end through compiled MiniC; this suite drives the
//! emulator directly so the schedule space (patch points, values, warm-up
//! runs) can be explored property-style.

use proptest::prelude::*;
use raindrop_machine::{
    AluOp, Assembler, Emulator, Image, ImageBuilder, Inst, Mem, Reg, RunExit, RETURN_SENTINEL,
    STACK_TOP,
};

/// Immediates with distinctive byte patterns, used as needles to locate
/// their own encoding inside the emitted text.
const IMM_A: i64 = 0x5EED_0001_A0A0_0001;
const IMM_B: i64 = 0x5EED_0002_B0B0_0002;

/// Builds `f() = A + B` from two patchable `mov r, imm64` instructions and
/// returns the image plus the text addresses of both immediates.
fn patchable_image() -> (Image, u64, u64) {
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRI(Reg::Rax, IMM_A))
        .inst(Inst::MovRI(Reg::Rcx, IMM_B))
        .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rcx))
        .inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let f = img.function("f").unwrap().clone();
    let bytes = img.function_bytes("f").unwrap().to_vec();
    let find = |imm: i64| {
        let needle = imm.to_le_bytes();
        let off =
            bytes.windows(8).position(|w| w == needle).expect("immediate encoding found in text");
        f.addr + off as u64
    };
    let (a, b) = (find(IMM_A), find(IMM_B));
    (img, a, b)
}

/// Points the emulator at `addr` exactly like [`Emulator::call`] does, but
/// without running, so the test can drive execution one `step()` at a time.
fn setup_call(emu: &mut Emulator, addr: u64) {
    emu.cpu.set_reg(Reg::Rsp, STACK_TOP - 8);
    emu.mem.write_u64(STACK_TOP - 8, RETURN_SENTINEL);
    emu.cpu.rip = addr;
}

fn step_to_return(emu: &mut Emulator) -> u64 {
    loop {
        if let Some(RunExit::Returned(v)) = emu.step().expect("smc program steps") {
            return v;
        }
    }
}

/// One host-driven action against the patchable function.
#[derive(Debug, Clone)]
enum Action {
    /// Overwrite the first (`true`) or second immediate with a new value.
    Patch { first: bool, value: i64 },
    /// Call the function to completion (also warms the icache).
    Call,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<bool>(), any::<i64>()).prop_map(|(first, value)| Action::Patch { first, value }),
        Just(Action::Call),
    ]
}

/// Replays `actions` on a fresh emulator and returns every observable:
/// per-call results, final statistics and the architectural registers.
fn replay(img: &Image, site_a: u64, site_b: u64, actions: &[Action], icache: bool) -> Vec<u64> {
    let mut emu = Emulator::new(img);
    emu.set_icache_enabled(icache);
    emu.set_budget(1_000_000);
    let mut observed = Vec::new();
    for action in actions {
        match action {
            Action::Patch { first, value } => {
                let site = if *first { site_a } else { site_b };
                emu.mem.write_bytes(site, &value.to_le_bytes());
            }
            Action::Call => {
                observed.push(emu.call_named(img, "f", &[]).expect("patched call runs"));
            }
        }
    }
    let stats = emu.stats();
    observed.extend([stats.instructions, stats.cycles, stats.mem_reads, stats.mem_writes]);
    observed.extend(Reg::ALL.iter().map(|r| emu.reg(*r)));
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of host text patches and calls is bit-identical
    /// with and without the predecoded cache.
    #[test]
    fn patch_schedules_are_bit_identical_with_and_without_icache(
        actions in prop::collection::vec(action_strategy(), 1..24),
    ) {
        let (img, site_a, site_b) = patchable_image();
        let cached = replay(&img, site_a, site_b, &actions, true);
        let uncached = replay(&img, site_a, site_b, &actions, false);
        prop_assert_eq!(cached, uncached);
    }

    /// The stalest possible predecode: warm the cache with full runs, stop
    /// a new activation after its first instruction, patch the *next*
    /// instruction's immediate from the host, and finish stepping. The
    /// fetch after the patch must decode the new bytes.
    #[test]
    fn mid_execution_patches_invalidate_warm_predecodes(
        warm in 0usize..3,
        value in any::<i64>(),
    ) {
        let (img, _, site_b) = patchable_image();
        let addr = img.function("f").unwrap().addr;
        for icache in [true, false] {
            let mut emu = Emulator::new(&img);
            emu.set_icache_enabled(icache);
            emu.set_budget(1_000_000);
            for _ in 0..warm {
                let v = emu.call_named(&img, "f", &[]).unwrap();
                prop_assert_eq!(v, (IMM_A as u64).wrapping_add(IMM_B as u64));
            }
            setup_call(&mut emu, addr);
            emu.step().expect("first mov executes");
            emu.mem.write_bytes(site_b, &value.to_le_bytes());
            let got = step_to_return(&mut emu);
            prop_assert_eq!(
                got,
                (IMM_A as u64).wrapping_add(value as u64),
                "icache={} warm={}: stale immediate survived the patch",
                icache,
                warm
            );
        }
    }
}

/// A function that stores into its *own* instruction stream and falls
/// through into the patched instruction: the guest-store analogue of the
/// host-patch properties, with zero instructions between the write and the
/// fetch it must invalidate.
#[test]
fn guest_store_into_own_text_takes_effect_on_the_very_next_fetch() {
    let mut asm = Assembler::new();
    // rax <- IMM_A; text[site of IMM_A's low bytes] <- rdi (arg 0, as a
    // 64-bit store over the whole immediate); rax <- IMM_A (now patched).
    asm.inst(Inst::MovRI(Reg::Rax, IMM_A))
        .inst(Inst::MovRI(Reg::Rcx, 0)) // placeholder for the site address
        .inst(Inst::Store(Mem::base(Reg::Rcx), Reg::Rdi))
        .inst(Inst::MovRI(Reg::Rax, IMM_A))
        .inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("g", asm);
    let mut img = b.build().unwrap();
    let g = img.function("g").unwrap().clone();
    let bytes = img.function_bytes("g").unwrap().to_vec();
    let needle = IMM_A.to_le_bytes();
    // The *second* occurrence of the immediate is the one executed after
    // the store.
    let first = bytes.windows(8).position(|w| w == needle).unwrap();
    let second = first + 8 + bytes[first + 8..].windows(8).position(|w| w == needle).unwrap();
    let target = g.addr + second as u64;
    // Patch the placeholder `mov rcx, 0` with the site address.
    let placeholder = 0i64.to_le_bytes();
    let ph_off = bytes.windows(8).position(|w| w == placeholder).unwrap();
    img.patch_text(g.addr + ph_off as u64, &(target as i64).to_le_bytes()).unwrap();

    for icache in [true, false] {
        let mut emu = Emulator::new(&img);
        emu.set_icache_enabled(icache);
        emu.set_budget(1_000_000);
        // First call warms every predecode slot, second call re-executes
        // over text the first call rewrote.
        let v1 = emu.call_named(&img, "g", &[0x1111_2222_3333_4444]).unwrap();
        assert_eq!(v1, 0x1111_2222_3333_4444, "icache={icache}: first run sees its own store");
        let v2 = emu.call_named(&img, "g", &[0x5555_6666_7777_8888]).unwrap();
        assert_eq!(v2, 0x5555_6666_7777_8888, "icache={icache}: warm rerun sees the new store");
    }
}
