//! Instruction-level semantics tests for the RM64 emulator.
//!
//! Every test builds a tiny function with the [`Assembler`], runs it through
//! [`Emulator::call_named`] and checks the architectural effect the ROP
//! rewriter and the attack tooling rely on (flag behaviour for the
//! `neg`/`adc` leak idiom, stack discipline of `push`/`pop`/`call`/`ret`,
//! shift masking, byte loads, `cmov`/`set`, `leave`, `xchg`, …).

use raindrop_machine::{
    AluOp, Assembler, Cond, EmuError, Emulator, Flags, ImageBuilder, Inst, Mem, Reg, RunExit,
    DATA_BASE, RETURN_SENTINEL, STACK_TOP,
};

/// Builds a one-function image and runs it with the given arguments.
fn run(build: impl FnOnce(&mut Assembler), args: &[u64]) -> u64 {
    let mut asm = Assembler::new();
    build(&mut asm);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    emu.call_named(&img, "f", args).unwrap()
}

/// Same as [`run`] but returns the emulator for further inspection.
fn run_emu(build: impl FnOnce(&mut Assembler), args: &[u64]) -> (u64, Emulator) {
    let mut asm = Assembler::new();
    build(&mut asm);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    let r = emu.call_named(&img, "f", args).unwrap();
    (r, emu)
}

// --- data movement -------------------------------------------------------

#[test]
fn mov_between_registers_and_immediates() {
    let r = run(
        |a| {
            a.inst(Inst::MovRI(Reg::Rax, -1))
                .inst(Inst::MovRR(Reg::Rbx, Reg::Rax))
                .inst(Inst::MovRI(Reg::Rax, 7))
                .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rbx))
                .inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(r, 6, "7 + (-1) wrapping in 64 bits");
}

#[test]
fn negative_mov_immediate_is_sign_extended() {
    let r = run(
        |a| {
            a.inst(Inst::MovRI(Reg::Rax, -1234)).inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(r, (-1234i64) as u64);
}

#[test]
fn load_and_store_roundtrip_through_the_stack_frame() {
    let r = run(
        |a| {
            a.inst(Inst::Push(Reg::Rbp))
                .inst(Inst::MovRR(Reg::Rbp, Reg::Rsp))
                .inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 32))
                .inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi))
                .inst(Inst::StoreI(Mem::base_disp(Reg::Rbp, -16), 100))
                .inst(Inst::Load(Reg::Rax, Mem::base_disp(Reg::Rbp, -8)))
                .inst(Inst::AluM(AluOp::Add, Reg::Rax, Mem::base_disp(Reg::Rbp, -16)))
                .inst(Inst::Leave)
                .inst(Inst::Ret);
        },
        &[42],
    );
    assert_eq!(r, 142);
}

#[test]
fn store_immediate_is_sign_extended_to_64_bits() {
    let r = run(
        |a| {
            a.inst(Inst::Push(Reg::Rbp))
                .inst(Inst::MovRR(Reg::Rbp, Reg::Rsp))
                .inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16))
                .inst(Inst::StoreI(Mem::base_disp(Reg::Rbp, -8), -1))
                .inst(Inst::Load(Reg::Rax, Mem::base_disp(Reg::Rbp, -8)))
                .inst(Inst::Leave)
                .inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(r, u64::MAX);
}

#[test]
fn byte_loads_zero_and_sign_extend() {
    // data byte 0x80: LoadB gives 0x80, LoadSxB gives 0xffff...ff80.
    let mut b = ImageBuilder::new();
    let mut asm = Assembler::new();
    asm.lea_sym(Reg::Rcx, "byte_val", 0)
        .inst(Inst::LoadB(Reg::Rax, Mem::base(Reg::Rcx)))
        .inst(Inst::LoadSxB(Reg::Rbx, Mem::base(Reg::Rcx)))
        .inst(Inst::Alu(AluOp::Xor, Reg::Rax, Reg::Rbx))
        .inst(Inst::Ret);
    b.add_function("f", asm);
    b.add_data("byte_val", &[0x80u8]);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    let r = emu.call_named(&img, "f", &[]).unwrap();
    assert_eq!(r, 0x80 ^ 0xffff_ffff_ffff_ff80);
}

#[test]
fn byte_store_writes_only_the_low_byte() {
    let mut b = ImageBuilder::new();
    let mut asm = Assembler::new();
    asm.lea_sym(Reg::Rcx, "buf", 0)
        .inst(Inst::MovRI(Reg::Rdx, 0x1234))
        .inst(Inst::StoreB(Mem::base(Reg::Rcx), Reg::Rdx))
        .inst(Inst::Load(Reg::Rax, Mem::base(Reg::Rcx)))
        .inst(Inst::Ret);
    b.add_function("f", asm);
    b.add_data("buf", &[0xff; 8]);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    let r = emu.call_named(&img, "f", &[]).unwrap();
    assert_eq!(r, 0xffff_ffff_ffff_ff34, "only the low byte is replaced");
}

#[test]
fn lea_computes_base_index_scale_disp_without_touching_memory() {
    let (r, emu) = run_emu(
        |a| {
            a.inst(Inst::MovRI(Reg::Rbx, 1000))
                .inst(Inst::MovRI(Reg::Rcx, 3))
                .inst(Inst::Lea(Reg::Rax, Mem::base_index(Reg::Rbx, Reg::Rcx, 8, 5)))
                .inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(r, 1000 + 3 * 8 + 5);
    assert_eq!(emu.stats().mem_reads, 1, "only the final `ret` touches memory");
}

#[test]
fn xchg_swaps_registers_and_memory() {
    let mut b = ImageBuilder::new();
    let mut asm = Assembler::new();
    asm.lea_sym(Reg::Rcx, "cell", 0)
        .inst(Inst::MovRI(Reg::Rax, 7))
        .inst(Inst::MovRI(Reg::Rbx, 9))
        .inst(Inst::XchgRR(Reg::Rax, Reg::Rbx))
        // rax = 9, rbx = 7; now swap rax with the memory cell (holds 100).
        .inst(Inst::XchgRM(Reg::Rax, Mem::base(Reg::Rcx)))
        // rax = 100, cell = 9. Return rax*1000 + cell + rbx.
        .inst(Inst::MulI(Reg::Rax, Reg::Rax, 1000))
        .inst(Inst::AluM(AluOp::Add, Reg::Rax, Mem::base(Reg::Rcx)))
        .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rbx))
        .inst(Inst::Ret);
    b.add_function("f", asm);
    b.add_data("cell", &100u64.to_le_bytes());
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 100_000 + 9 + 7);
}

// --- ALU, shifts, multiplication, division -------------------------------

#[test]
fn alu_reference_semantics() {
    let cases: [(AluOp, u64, u64, u64); 7] = [
        (AluOp::Add, 3, 4, 7),
        (AluOp::Sub, 3, 4, 3u64.wrapping_sub(4)),
        (AluOp::And, 0b1100, 0b1010, 0b1000),
        (AluOp::Or, 0b1100, 0b1010, 0b1110),
        (AluOp::Xor, 0b1100, 0b1010, 0b0110),
        (AluOp::Adc, u64::MAX, 0, u64::MAX), // carry starts cleared
        (AluOp::Sbb, 10, 3, 7),
    ];
    for (op, a, b, want) in cases {
        let got = run(
            |asm| {
                asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                    .inst(Inst::Alu(op, Reg::Rax, Reg::Rsi))
                    .inst(Inst::Ret);
            },
            &[a, b],
        );
        assert_eq!(got, want, "{op:?} {a} {b}");
    }
}

#[test]
fn adc_after_neg_implements_the_carry_leak_of_figure_1() {
    // rcx = (rax != 0) ? 1 : 0, exactly the Figure 1 idiom.
    for (rax, want) in [(0u64, 0u64), (1, 1), (u64::MAX, 1), (123456, 1)] {
        let got = run(
            |asm| {
                asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                    .inst(Inst::MovRI(Reg::Rcx, 0))
                    .inst(Inst::Neg(Reg::Rax))
                    .inst(Inst::Alu(AluOp::Adc, Reg::Rcx, Reg::Rcx))
                    .inst(Inst::MovRR(Reg::Rax, Reg::Rcx))
                    .inst(Inst::Ret);
            },
            &[rax],
        );
        assert_eq!(got, want, "rax = {rax}");
    }
}

#[test]
fn sbb_consumes_the_borrow_produced_by_a_previous_compare() {
    // cmp 1, 2 sets CF (borrow); sbb rax, rax then yields -1.
    let got = run(
        |asm| {
            asm.inst(Inst::MovRI(Reg::Rbx, 1))
                .inst(Inst::CmpI(Reg::Rbx, 2))
                .inst(Inst::MovRI(Reg::Rax, 0))
                .inst(Inst::Alu(AluOp::Sbb, Reg::Rax, Reg::Rax))
                .inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(got, u64::MAX);
}

#[test]
fn shifts_mask_their_count_to_six_bits() {
    let got = run(
        |asm| {
            asm.inst(Inst::MovRI(Reg::Rax, 1))
                .inst(Inst::MovRI(Reg::Rcx, 65)) // 65 & 63 == 1
                .inst(Inst::ShlR(Reg::Rax, Reg::Rcx))
                .inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(got, 2);
}

#[test]
fn arithmetic_shift_preserves_the_sign() {
    let got = run(
        |asm| {
            asm.inst(Inst::MovRI(Reg::Rax, -16)).inst(Inst::Sar(Reg::Rax, 2)).inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(got as i64, -4);
    let logical = run(
        |asm| {
            asm.inst(Inst::MovRI(Reg::Rax, -16)).inst(Inst::Shr(Reg::Rax, 2)).inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(logical, ((-16i64) as u64) >> 2);
}

#[test]
fn multiplication_keeps_the_low_64_bits() {
    let got = run(
        |asm| {
            asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                .inst(Inst::Mul(Reg::Rax, Reg::Rsi))
                .inst(Inst::Ret);
        },
        &[u64::MAX, 3],
    );
    assert_eq!(got, u64::MAX.wrapping_mul(3));
}

#[test]
fn division_and_remainder_are_unsigned() {
    let q = run(
        |asm| {
            asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                .inst(Inst::Div(Reg::Rax, Reg::Rsi))
                .inst(Inst::Ret);
        },
        &[u64::MAX, 10],
    );
    assert_eq!(q, u64::MAX / 10);
    let r = run(
        |asm| {
            asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                .inst(Inst::Rem(Reg::Rax, Reg::Rsi))
                .inst(Inst::Ret);
        },
        &[u64::MAX, 10],
    );
    assert_eq!(r, u64::MAX % 10);
}

#[test]
fn division_by_zero_is_a_fault_not_a_silent_value() {
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRI(Reg::Rax, 10))
        .inst(Inst::MovRI(Reg::Rbx, 0))
        .inst(Inst::Div(Reg::Rax, Reg::Rbx))
        .inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    let err = emu.call_named(&img, "f", &[]).unwrap_err();
    assert!(matches!(err, EmuError::DivideByZero { .. }), "{err:?}");
}

#[test]
fn not_leaves_flags_untouched_like_x86() {
    // Set ZF with a compare, then `not`; a following sete must still see ZF.
    let got = run(
        |asm| {
            asm.inst(Inst::MovRI(Reg::Rbx, 5))
                .inst(Inst::CmpI(Reg::Rbx, 5))
                .inst(Inst::Not(Reg::Rbx))
                .inst(Inst::Set(Cond::E, Reg::Rax))
                .inst(Inst::Ret);
        },
        &[],
    );
    assert_eq!(got, 1, "ZF survived the `not`");
}

// --- conditions, cmov, set ------------------------------------------------

type CondPred = fn(u64, u64) -> bool;

#[test]
fn all_comparison_conditions_match_their_reference_predicates() {
    let pairs: [(u64, u64); 6] =
        [(1, 2), (2, 1), (5, 5), (0, u64::MAX), (u64::MAX, 0), (i64::MIN as u64, 1)];
    let preds: [(Cond, CondPred); 10] = [
        (Cond::E, |a, b| a == b),
        (Cond::Ne, |a, b| a != b),
        (Cond::L, |a, b| (a as i64) < (b as i64)),
        (Cond::Le, |a, b| (a as i64) <= (b as i64)),
        (Cond::G, |a, b| (a as i64) > (b as i64)),
        (Cond::Ge, |a, b| (a as i64) >= (b as i64)),
        (Cond::B, |a, b| a < b),
        (Cond::Be, |a, b| a <= b),
        (Cond::A, |a, b| a > b),
        (Cond::Ae, |a, b| a >= b),
    ];
    for (a, b) in pairs {
        for (cond, reference) in preds {
            let got = run(
                |asm| {
                    asm.inst(Inst::Cmp(Reg::Rdi, Reg::Rsi))
                        .inst(Inst::Set(cond, Reg::Rax))
                        .inst(Inst::Ret);
                },
                &[a, b],
            );
            assert_eq!(got, reference(a, b) as u64, "cmp {a}, {b}; set{cond:?}");
        }
    }
}

#[test]
fn cond_negate_is_an_involution_and_flips_the_outcome() {
    for cond in Cond::ALL {
        assert_eq!(cond.negate().negate(), cond);
        // Exhaustively check every flag combination.
        for bits in 0..16u8 {
            let f = Flags::from_bits(bits);
            assert_eq!(cond.eval(f), !cond.negate().eval(f), "{cond:?} on {f}");
        }
    }
}

#[test]
fn flags_bits_roundtrip() {
    for bits in 0..16u8 {
        assert_eq!(Flags::from_bits(bits).to_bits(), bits);
    }
}

#[test]
fn cmov_only_moves_when_the_condition_holds() {
    for (a, b) in [(3u64, 9u64), (9, 3), (4, 4)] {
        let got = run(
            |asm| {
                // rax = max(a, b) via cmov.
                asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                    .inst(Inst::Cmp(Reg::Rax, Reg::Rsi))
                    .inst(Inst::Cmov(Cond::B, Reg::Rax, Reg::Rsi))
                    .inst(Inst::Ret);
            },
            &[a, b],
        );
        assert_eq!(got, a.max(b));
    }
}

// --- control flow ----------------------------------------------------------

#[test]
fn conditional_branches_select_the_right_path() {
    // f(x) = x == 0 ? 111 : 222, with an explicit jcc/jmp diamond.
    for (x, want) in [(0u64, 111u64), (5, 222)] {
        let got = run(
            |asm| {
                let else_l = asm.new_label();
                let join = asm.new_label();
                asm.inst(Inst::TestI(Reg::Rdi, -1));
                asm.jcc(Cond::Ne, else_l);
                asm.inst(Inst::MovRI(Reg::Rax, 111));
                asm.jmp(join);
                asm.bind(else_l);
                asm.inst(Inst::MovRI(Reg::Rax, 222));
                asm.bind(join);
                asm.inst(Inst::Ret);
            },
            &[x],
        );
        assert_eq!(got, want, "x = {x}");
    }
}

#[test]
fn loops_terminate_and_accumulate() {
    // f(n) = sum(1..=n)
    let got = run(
        |asm| {
            let head = asm.new_label();
            let done = asm.new_label();
            asm.inst(Inst::MovRI(Reg::Rax, 0)).inst(Inst::MovRI(Reg::Rcx, 1));
            asm.bind(head);
            asm.inst(Inst::Cmp(Reg::Rcx, Reg::Rdi));
            asm.jcc(Cond::A, done);
            asm.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rcx));
            asm.inst(Inst::AluI(AluOp::Add, Reg::Rcx, 1));
            asm.jmp(head);
            asm.bind(done);
            asm.inst(Inst::Ret);
        },
        &[100],
    );
    assert_eq!(got, 5050);
}

#[test]
fn calls_push_the_return_address_and_ret_pops_it() {
    // callee(x) = x + 1; caller calls it twice.
    let mut callee = Assembler::new();
    callee
        .inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
        .inst(Inst::AluI(AluOp::Add, Reg::Rax, 1))
        .inst(Inst::Ret);
    let mut caller = Assembler::new();
    caller.call_sym("callee");
    caller.inst(Inst::MovRR(Reg::Rdi, Reg::Rax));
    caller.call_sym("callee");
    caller.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("caller", caller);
    b.add_function("callee", callee);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    assert_eq!(emu.call_named(&img, "caller", &[40]).unwrap(), 42);
    assert_eq!(emu.stats().calls, 2);
    assert!(emu.stats().rets >= 3);
}

#[test]
fn indirect_calls_through_a_register_work() {
    let mut callee = Assembler::new();
    callee.inst(Inst::MovRI(Reg::Rax, 77)).inst(Inst::Ret);
    let mut caller = Assembler::new();
    caller.mov_sym_addr(Reg::R10, "callee");
    caller.inst(Inst::CallReg(Reg::R10));
    caller.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("caller", caller);
    b.add_function("callee", callee);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    assert_eq!(emu.call_named(&img, "caller", &[]).unwrap(), 77);
}

#[test]
fn jmp_through_memory_reads_the_target_from_a_table() {
    // A one-entry "switch table" holding the address of the target block.
    let mut target = Assembler::new();
    target.inst(Inst::MovRI(Reg::Rax, 1234)).inst(Inst::Ret);
    let mut entry = Assembler::new();
    entry.lea_sym(Reg::Rcx, "table", 0);
    entry.inst(Inst::JmpMem(Mem::base(Reg::Rcx)));
    let mut b = ImageBuilder::new();
    b.add_function("entry", entry);
    b.add_function("target", target);
    b.add_bss("table", 8);
    let img = b.build().unwrap();
    let target_addr = img.symbol("target").unwrap();
    let table = img.symbol("table").unwrap();
    let mut emu = Emulator::new(&img);
    emu.mem.write_u64(table, target_addr);
    assert_eq!(emu.call_named(&img, "entry", &[]).unwrap(), 1234);
}

#[test]
fn hlt_exits_with_the_halted_exit_reason() {
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRI(Reg::Rax, 9)).inst(Inst::Hlt);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    emu.cpu.rip = img.symbol("f").unwrap();
    emu.set_reg(Reg::Rsp, STACK_TOP);
    assert_eq!(emu.run().unwrap(), RunExit::Halted);
    assert_eq!(emu.reg(Reg::Rax), 9);
}

// --- stack discipline and the ROP-relevant pivots --------------------------

#[test]
fn push_pop_pairs_restore_the_stack_pointer() {
    let (_, emu) = run_emu(
        |asm| {
            asm.inst(Inst::Push(Reg::Rdi))
                .inst(Inst::Push(Reg::Rsi))
                .inst(Inst::PushI(33))
                .inst(Inst::Pop(Reg::Rax))
                .inst(Inst::Pop(Reg::Rbx))
                .inst(Inst::Pop(Reg::Rcx))
                .inst(Inst::Ret);
        },
        &[1, 2],
    );
    // After a balanced function call the stack pointer is back above the
    // sentinel slot.
    assert_eq!(emu.reg(Reg::Rsp), STACK_TOP);
    assert_eq!(emu.reg(Reg::Rax), 33);
    assert_eq!(emu.reg(Reg::Rbx), 2);
    assert_eq!(emu.reg(Reg::Rcx), 1);
}

#[test]
fn ret_driven_chain_execution_uses_rsp_as_program_counter() {
    // Lay two pop-gadgets' addresses in .data and "execute" them by pointing
    // RSP at the pseudo-chain — the fundamental ROP dispatch the whole
    // design builds on.
    let mut b = ImageBuilder::new();
    let mut stub = Assembler::new();
    stub.inst(Inst::Ret);
    b.add_function("stub", stub);
    let mut img = b.build().unwrap();
    let g1 =
        img.append_text(None, &raindrop_machine::encode_all(&[Inst::Pop(Reg::Rax), Inst::Ret]));
    let g2 = img.append_text(
        None,
        &raindrop_machine::encode_all(&[Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rax), Inst::Ret]),
    );
    let mut chain = Vec::new();
    for v in [g1, 21, g2, RETURN_SENTINEL] {
        chain.extend_from_slice(&v.to_le_bytes());
    }
    let chain_addr = img.append_data(Some("chain"), &chain);
    let mut emu = Emulator::new(&img);
    emu.set_reg(Reg::Rsp, chain_addr);
    emu.cpu.rip = img.symbol("stub").unwrap();
    let exit = emu.run().unwrap();
    assert_eq!(exit, RunExit::Returned(42));
}

#[test]
fn budget_exhaustion_is_reported_not_looped_forever() {
    let mut asm = Assembler::new();
    let head = asm.new_label();
    asm.bind(head);
    asm.jmp(head);
    let mut b = ImageBuilder::new();
    b.add_function("spin", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    emu.set_budget(1_000);
    let err = emu.call_named(&img, "spin", &[]).unwrap_err();
    match err {
        EmuError::BudgetExceeded { executed } => assert_eq!(executed, 1_000),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn decoding_garbage_is_a_fault() {
    let mut b = ImageBuilder::new();
    let mut asm = Assembler::new();
    asm.inst(Inst::Ret);
    b.add_function("stub", asm);
    let mut img = b.build().unwrap();
    let garbage = img.append_text(None, &[0xFF, 0xFE, 0xFD, 0xFC]);
    let mut emu = Emulator::new(&img);
    emu.set_reg(Reg::Rsp, STACK_TOP - 8);
    emu.mem.write_u64(STACK_TOP - 8, RETURN_SENTINEL);
    emu.cpu.rip = garbage;
    let err = emu.run().unwrap_err();
    assert!(matches!(err, EmuError::Decode { .. }), "{err:?}");
}

// --- statistics, snapshots, traces -----------------------------------------

#[test]
fn execution_is_deterministic_across_fresh_emulators() {
    let w = |asm: &mut Assembler| {
        let head = asm.new_label();
        let done = asm.new_label();
        asm.inst(Inst::MovRI(Reg::Rax, 1)).inst(Inst::MovRI(Reg::Rcx, 0));
        asm.bind(head);
        asm.inst(Inst::Cmp(Reg::Rcx, Reg::Rdi));
        asm.jcc(Cond::Ae, done);
        asm.inst(Inst::MulI(Reg::Rax, Reg::Rax, 3));
        asm.inst(Inst::AluI(AluOp::Xor, Reg::Rax, 0x55));
        asm.inst(Inst::AluI(AluOp::Add, Reg::Rcx, 1));
        asm.jmp(head);
        asm.bind(done);
        asm.inst(Inst::Ret);
    };
    let (r1, e1) = run_emu(w, &[57]);
    let (r2, e2) = run_emu(w, &[57]);
    assert_eq!(r1, r2);
    assert_eq!(e1.stats(), e2.stats());
}

#[test]
fn cycle_accounting_charges_memory_and_division_extra() {
    let (_, cheap) = run_emu(
        |a| {
            a.inst(Inst::MovRI(Reg::Rax, 1)).inst(Inst::Ret);
        },
        &[],
    );
    let (_, expensive) = run_emu(
        |a| {
            a.inst(Inst::MovRI(Reg::Rax, 100))
                .inst(Inst::MovRI(Reg::Rbx, 3))
                .inst(Inst::Div(Reg::Rax, Reg::Rbx))
                .inst(Inst::Ret);
        },
        &[],
    );
    assert!(expensive.stats().cycles > cheap.stats().cycles + 10);
    assert!(cheap.stats().cycles >= cheap.stats().instructions);
}

#[test]
fn snapshot_and_restore_reproduce_the_same_final_state() {
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
        .inst(Inst::MulI(Reg::Rax, Reg::Rax, 7))
        .inst(Inst::AluI(AluOp::Add, Reg::Rax, 13))
        .inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();

    let mut emu = Emulator::new(&img);
    let snap = emu.snapshot();
    let first = emu.call_named(&img, "f", &[11]).unwrap();
    emu.restore(&snap);
    let second = emu.call_named(&img, "f", &[11]).unwrap();
    assert_eq!(first, second);
}

#[test]
fn traces_record_rets_and_branch_outcomes() {
    let mut asm = Assembler::new();
    let skip = asm.new_label();
    asm.inst(Inst::TestI(Reg::Rdi, -1));
    asm.jcc(Cond::E, skip);
    asm.inst(Inst::MovRI(Reg::Rax, 1));
    asm.bind(skip);
    asm.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    emu.set_tracing(true);
    emu.call_named(&img, "f", &[5]).unwrap();
    let trace = emu.take_trace();
    assert!(!trace.is_empty());
    assert_eq!(trace.ret_indices().len(), 1, "one ret executed");
    let branch = trace.iter().find(|e| matches!(e.inst, Inst::Jcc(..))).unwrap();
    assert_eq!(branch.branch_taken, Some(false), "input 5 falls through");
    // The ret entry pops one slot: its RSP delta is +8.
    let ret_entry = &trace.entries[trace.ret_indices()[0]];
    assert_eq!(ret_entry.rsp_delta(), 8);
}

#[test]
fn heap_allocations_are_aligned_and_disjoint() {
    let mut asm = Assembler::new();
    asm.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    let a = emu.heap_alloc(24).unwrap();
    let b2 = emu.heap_alloc(100).unwrap();
    let c = emu.heap_alloc(1).unwrap();
    assert_eq!(a % 16, 0);
    assert_eq!(b2 % 16, 0);
    assert!(b2 >= a + 24);
    assert!(c >= b2 + 100);
}

#[test]
fn heap_overflow_is_a_typed_error() {
    let mut asm = Assembler::new();
    asm.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let mut emu = Emulator::new(&img);
    // Exhaust the heap region in two large allocations; the break must
    // never silently run past HEAP_BASE + HEAP_SIZE into the chain/stack
    // space above it.
    let first = emu.heap_alloc(raindrop_machine::HEAP_SIZE - 16).unwrap();
    assert!(first >= raindrop_machine::HEAP_BASE);
    let err = emu.heap_alloc(64).unwrap_err();
    assert!(matches!(err, EmuError::HeapExhausted { requested: 64, .. }), "got {err}");
    // A huge request can never wrap the break around the address space.
    assert!(matches!(emu.heap_alloc(u64::MAX).unwrap_err(), EmuError::HeapExhausted { .. }));
    // Small allocations still succeed after a failed one.
    assert!(emu.heap_alloc(8).is_ok());
}

#[test]
fn data_section_contents_are_visible_to_the_program() {
    let mut b = ImageBuilder::new();
    let mut asm = Assembler::new();
    asm.load_sym(Reg::Rax, "value", 0).inst(Inst::Ret);
    b.add_function("f", asm);
    b.add_data("value", &0xfeed_face_dead_beefu64.to_le_bytes());
    let img = b.build().unwrap();
    assert!(img.symbol("value").unwrap() >= DATA_BASE);
    let mut emu = Emulator::new(&img);
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 0xfeed_face_dead_beef);
}
