//! Property tests for the page-slice memory fast path and the predecoded
//! instruction cache's generation-counter invalidation.
//!
//! The memory properties drive the chunked/TLB implementation against a
//! naive byte-map model (the semantics of the seed implementation); the
//! icache tests prove that a write into a decoded page forces a re-decode —
//! the correctness argument that lets text pages be served from the cache
//! without any explicit invalidation hooks.

use proptest::prelude::*;
use raindrop_machine::{AluOp, Assembler, Emulator, ImageBuilder, Inst, Memory, Reg, PAGE_SIZE};
use std::collections::HashMap;

/// The seed memory semantics: a flat byte map, zero default.
#[derive(Default)]
struct ModelMem {
    bytes: HashMap<u64, u8>,
}

impl ModelMem {
    fn write(&mut self, addr: u64, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.bytes.insert(addr.wrapping_add(i as u64), *b);
        }
    }

    fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.bytes.get(&addr.wrapping_add(i as u64)).copied().unwrap_or(0))
            .collect()
    }
}

/// One memory operation of the differential property.
#[derive(Debug, Clone)]
enum Op {
    WriteBytes(u64, Vec<u8>),
    WriteU64(u64, u64),
    WriteU8(u64, u8),
}

fn any_addr() -> impl Strategy<Value = u64> {
    // Bias towards page edges so straddling accesses are common.
    prop_oneof![
        0u64..0x8000,
        (1u64..8).prop_map(|k| k * PAGE_SIZE as u64 - 7),
        (1u64..8).prop_map(|k| k * PAGE_SIZE as u64 - 1),
    ]
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any_addr(), prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(a, d)| Op::WriteBytes(a, d)),
        (any_addr(), any::<u64>()).prop_map(|(a, v)| Op::WriteU64(a, v)),
        (any_addr(), any::<u8>()).prop_map(|(a, v)| Op::WriteU8(a, v)),
    ]
}

proptest! {
    /// Arbitrary interleavings of scalar/bulk writes at page-edge-biased
    /// addresses read back identically through every access width, in both
    /// the fast memory and the byte-map model.
    #[test]
    fn chunked_memory_matches_byte_map_model(ops in prop::collection::vec(any_op(), 1..40),
                                             probe in any_addr()) {
        let mut mem = Memory::new();
        let mut model = ModelMem::default();
        for op in &ops {
            match op {
                Op::WriteBytes(a, d) => {
                    mem.write_bytes(*a, d);
                    model.write(*a, d);
                }
                Op::WriteU64(a, v) => {
                    mem.write_u64(*a, *v);
                    model.write(*a, &v.to_le_bytes());
                }
                Op::WriteU8(a, v) => {
                    mem.write_u8(*a, *v);
                    model.write(*a, &[*v]);
                }
            }
        }
        // Read back through all widths, including page-straddling spans.
        for op in &ops {
            let (addr, len) = match op {
                Op::WriteBytes(a, d) => (*a, d.len()),
                Op::WriteU64(a, _) => (*a, 8),
                Op::WriteU8(a, _) => (*a, 1),
            };
            let mut got = vec![0u8; len];
            mem.read_bytes(addr, &mut got);
            prop_assert_eq!(&got, &model.read(addr, len));
        }
        prop_assert_eq!(mem.read_u64(probe), u64::from_le_bytes(
            model.read(probe, 8).try_into().unwrap()));
        prop_assert_eq!(mem.read_u8(probe), model.read(probe, 1)[0]);
    }

    /// A u64 written across a page boundary is visible byte-wise in both
    /// pages, and the TLB does not confuse the two pages on readback.
    #[test]
    fn straddling_u64_lands_in_both_pages(page in 1u64..16, off in 4089u64..4096,
                                          v in any::<u64>()) {
        let addr = page * PAGE_SIZE as u64 + off - PAGE_SIZE as u64;
        let mut m = Memory::new();
        m.write_u64(addr, v);
        prop_assert_eq!(m.read_u64(addr), v);
        // Alternate far-apart reads to force TLB replacement between probes.
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            prop_assert_eq!(m.read_u8(addr + i as u64), *b);
            prop_assert_eq!(m.read_u8(0xdead_0000 + i as u64), 0);
        }
    }

    /// Restore-in-place ("page eviction" back to the snapshot state) must
    /// not leave stale TLB or cache state: reads after the restore see the
    /// snapshot contents, including on pages the TLB had just resolved.
    #[test]
    fn tlb_sees_through_restore(addr in any_addr(), before in any::<u64>(),
                                after in any::<u64>()) {
        let mut emu_mem = Memory::new();
        emu_mem.write_u64(addr, before);
        let snap = emu_mem.clone();
        // Touch the page (TLB now caches it), diverge it, then restore.
        prop_assert_eq!(emu_mem.read_u64(addr), before);
        emu_mem.write_u64(addr, after);
        emu_mem.write_u64(addr ^ 0x10_0000, after);
        prop_assert_eq!(emu_mem.read_u64(addr), after);
        emu_mem.restore_from(&snap);
        prop_assert_eq!(emu_mem.read_u64(addr), before);
        prop_assert_eq!(emu_mem.read_u64(addr ^ 0x10_0000), 0);
    }
}

/// Builds an image whose function loads an immediate and returns; used as
/// patchable text for the self-modification tests.
fn mov_ret_image(value: i64) -> (raindrop_machine::Image, u64) {
    let mut asm = Assembler::new();
    asm.inst(Inst::MovRI(Reg::Rax, value)).inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("f", asm);
    let img = b.build().unwrap();
    let addr = img.function("f").unwrap().addr;
    (img, addr)
}

#[test]
fn icache_self_modifying_text_is_re_decoded() {
    let (img, faddr) = mov_ret_image(1);
    let mut emu = Emulator::new(&img);

    // First run decodes and caches the text page.
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 1);
    // Overwrite the immediate operand of `mov rax, imm64` in guest memory
    // (opcode byte, register byte, then the 8 little-endian immediate
    // bytes). A stale icache would keep returning 1.
    emu.mem.write_u64(faddr + 2, 42);
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 42, "write invalidated the decoded run");

    // Repatching the same page again re-decodes again.
    emu.mem.write_u64(faddr + 2, 7);
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 7);
}

#[test]
fn icache_snapshot_restore_rolls_text_back() {
    let (img, faddr) = mov_ret_image(5);
    let mut emu = Emulator::new(&img);
    let snap = emu.snapshot();
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 5);

    emu.mem.write_u64(faddr + 2, 99);
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 99);

    // Restoring reverts the patched text; the icache entry tagged with the
    // patched generation must not survive.
    emu.restore(&snap);
    assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 5);
}

#[test]
fn icache_disabled_reference_path_agrees() {
    // The reference slow path (no cache) and the fast path execute the same
    // self-modification sequence identically.
    for enabled in [true, false] {
        let (img, faddr) = mov_ret_image(3);
        let mut emu = Emulator::new(&img);
        emu.set_icache_enabled(enabled);
        assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 3);
        emu.mem.write_u64(faddr + 2, 1234);
        assert_eq!(emu.call_named(&img, "f", &[]).unwrap(), 1234, "icache={enabled}");
    }
}

#[test]
fn warm_restore_keeps_stats_and_results_reproducible() {
    // A loopy function executed repeatedly from a restored snapshot gives
    // identical stats every time (the verify_batch access pattern).
    let mut asm = Assembler::new();
    let top = asm.new_label();
    let done = asm.new_label();
    asm.inst(Inst::MovRI(Reg::Rax, 0));
    asm.bind(top);
    asm.inst(Inst::CmpI(Reg::Rdi, 0));
    asm.jcc(raindrop_machine::Cond::E, done);
    asm.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rdi));
    asm.inst(Inst::AluI(AluOp::Sub, Reg::Rdi, 1));
    asm.jmp(top);
    asm.bind(done);
    asm.inst(Inst::Ret);
    let mut b = ImageBuilder::new();
    b.add_function("sum", asm);
    let img = b.build().unwrap();

    let mut emu = Emulator::new(&img);
    let snap = emu.snapshot();
    let mut stats = Vec::new();
    for _ in 0..5 {
        emu.restore(&snap);
        assert_eq!(emu.call_named(&img, "sum", &[100]).unwrap(), 5050);
        stats.push(emu.stats());
    }
    assert!(stats.windows(2).all(|w| w[0] == w[1]), "stats drift across warm restores");
}
