//! CPU condition flags.
//!
//! RM64 keeps the four x86-64 arithmetic flags the ROP encoding cares about:
//! carry, zero, sign and overflow. The paper's branch encoding leaks one of
//! these into a register (e.g. `neg rax; adc rcx, rcx` leaks "RAX != 0"
//! through the carry flag), so the emulator models them bit-exactly for the
//! operations that chains and the rewriter rely on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The arithmetic condition flags of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Carry flag: unsigned overflow / borrow.
    pub cf: bool,
    /// Zero flag: result was zero.
    pub zf: bool,
    /// Sign flag: most significant bit of the result.
    pub sf: bool,
    /// Overflow flag: signed overflow.
    pub of: bool,
}

impl Flags {
    /// All flags cleared.
    pub fn cleared() -> Flags {
        Flags::default()
    }

    /// Packs the flags into a small integer (bit 0 = CF, 1 = ZF, 2 = SF, 3 = OF).
    pub fn to_bits(self) -> u8 {
        (self.cf as u8) | (self.zf as u8) << 1 | (self.sf as u8) << 2 | (self.of as u8) << 3
    }

    /// Unpacks flags previously packed with [`Flags::to_bits`].
    pub fn from_bits(bits: u8) -> Flags {
        Flags { cf: bits & 1 != 0, zf: bits & 2 != 0, sf: bits & 4 != 0, of: bits & 8 != 0 }
    }

    /// Sets ZF/SF from a 64-bit result (used by logical operations, which
    /// also clear CF and OF as on x86-64).
    pub fn set_logic(&mut self, result: u64) {
        self.cf = false;
        self.of = false;
        self.zf = result == 0;
        self.sf = (result as i64) < 0;
    }

    /// Updates flags for `a + b (+ carry_in)`.
    pub fn set_add(&mut self, a: u64, b: u64, carry_in: bool) -> u64 {
        let (r1, c1) = a.overflowing_add(b);
        let (r, c2) = r1.overflowing_add(carry_in as u64);
        self.cf = c1 || c2;
        self.zf = r == 0;
        self.sf = (r as i64) < 0;
        // Signed overflow: operands share sign, result differs.
        let sa = (a as i64) < 0;
        let sb = (b as i64) < 0;
        let sr = (r as i64) < 0;
        self.of = (sa == sb) && (sr != sa);
        r
    }

    /// Updates flags for `a - b (- borrow_in)` and returns the result.
    pub fn set_sub(&mut self, a: u64, b: u64, borrow_in: bool) -> u64 {
        let (r1, c1) = a.overflowing_sub(b);
        let (r, c2) = r1.overflowing_sub(borrow_in as u64);
        self.cf = c1 || c2;
        self.zf = r == 0;
        self.sf = (r as i64) < 0;
        let sa = (a as i64) < 0;
        let sb = (b as i64) < 0;
        let sr = (r as i64) < 0;
        self.of = (sa != sb) && (sr != sa);
        r
    }

    /// Updates flags for `neg a` (two's complement). Matches x86-64: CF is
    /// set iff the operand was non-zero.
    pub fn set_neg(&mut self, a: u64) -> u64 {
        let r = (a as i64).wrapping_neg() as u64;
        self.cf = a != 0;
        self.zf = r == 0;
        self.sf = (r as i64) < 0;
        self.of = a == i64::MIN as u64;
        r
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}]",
            if self.cf { 'C' } else { '-' },
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.of { 'O' } else { '-' }
        )
    }
}

/// Branch/conditional-move conditions, mirroring the x86-64 condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Cond {
    /// Equal / zero (`ZF`).
    E = 0,
    /// Not equal / not zero (`!ZF`).
    Ne = 1,
    /// Signed less-than (`SF != OF`).
    L = 2,
    /// Signed less-or-equal (`ZF || SF != OF`).
    Le = 3,
    /// Signed greater-than (`!ZF && SF == OF`).
    G = 4,
    /// Signed greater-or-equal (`SF == OF`).
    Ge = 5,
    /// Unsigned below (`CF`).
    B = 6,
    /// Unsigned below-or-equal (`CF || ZF`).
    Be = 7,
    /// Unsigned above (`!CF && !ZF`).
    A = 8,
    /// Unsigned above-or-equal (`!CF`).
    Ae = 9,
    /// Sign set.
    S = 10,
    /// Sign clear.
    Ns = 11,
    /// Overflow set.
    O = 12,
    /// Overflow clear.
    No = 13,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 14] = [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
        Cond::O,
        Cond::No,
    ];

    /// Evaluates the condition against a flag state.
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::Ae => !f.cf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
            Cond::O => f.of,
            Cond::No => !f.of,
        }
    }

    /// The logically negated condition (`E` ↔ `Ne`, `L` ↔ `Ge`, …).
    pub fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
            Cond::O => Cond::No,
            Cond::No => Cond::O,
        }
    }

    /// Numeric encoding used by the instruction encoder.
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Builds a condition from its numeric encoding.
    pub fn from_index(idx: u8) -> Option<Cond> {
        Cond::ALL.get(idx as usize).copied()
    }

    /// The x86-style mnemonic suffix (e.g. `"ne"`).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::O => "o",
            Cond::No => "no",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sets_carry_and_zero() {
        let mut f = Flags::cleared();
        let r = f.set_add(u64::MAX, 1, false);
        assert_eq!(r, 0);
        assert!(f.cf);
        assert!(f.zf);
    }

    #[test]
    fn sub_sets_borrow() {
        let mut f = Flags::cleared();
        let r = f.set_sub(0, 1, false);
        assert_eq!(r, u64::MAX);
        assert!(f.cf);
        assert!(!f.zf);
        assert!(f.sf);
    }

    #[test]
    fn neg_carry_matches_x86() {
        let mut f = Flags::cleared();
        assert_eq!(f.set_neg(0), 0);
        assert!(!f.cf, "neg 0 clears CF");
        let r = f.set_neg(5);
        assert_eq!(r as i64, -5);
        assert!(f.cf, "neg non-zero sets CF");
    }

    #[test]
    fn signed_overflow_detected() {
        let mut f = Flags::cleared();
        f.set_add(i64::MAX as u64, 1, false);
        assert!(f.of);
        f.set_sub(i64::MIN as u64, 1, false);
        assert!(f.of);
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        // Exhaustively check every flag combination.
        for bits in 0..16u8 {
            let f = Flags::from_bits(bits);
            for c in Cond::ALL {
                assert_eq!(c.negate().negate(), c);
                assert_ne!(c.eval(f), c.negate().eval(f), "cond {c} flags {f}");
            }
        }
    }

    #[test]
    fn cond_roundtrip_through_index() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_index(c.index()), Some(c));
        }
        assert_eq!(Cond::from_index(14), None);
    }

    #[test]
    fn flags_roundtrip_bits() {
        for bits in 0..16u8 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }
}
