//! The RM64 emulator.
//!
//! The emulator is the testbed of the whole reproduction: the same machine
//! runs the original compiled functions, the ROP-rewritten chains (which are
//! *data* driven through `ret`), the VM-obfuscated interpreters and the
//! concrete side of the concolic attacker. It counts instructions and an
//! abstract cycle cost, optionally records a full [`Trace`], and can snapshot
//! and restore its state (used by the multi-path attack tools).

use crate::flags::Flags;
use crate::icache::ICache;
use crate::image::{Image, HEAP_BASE, HEAP_SIZE, RETURN_SENTINEL, STACK_TOP};
use crate::inst::{AluOp, Inst, Mem};
use crate::mem::{page_key, page_offset, Memory, PAGE_SIZE};
use crate::reg::Reg;
use crate::trace::{MemAccess, Trace, TraceEntry};
use crate::{decode, DecodeError};
use std::fmt;

/// Bytes the fetch path presents to the decoder (an upper bound on the
/// encoded length of any instruction).
const FETCH_WINDOW: usize = 20;

/// Default instruction budget for a single run.
pub const DEFAULT_BUDGET: u64 = 200_000_000;

/// Execution statistics kept by the emulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Abstract cycle count (memory traffic and slow ops weighted).
    pub cycles: u64,
    /// 64-bit or byte loads performed (excluding instruction fetch).
    pub mem_reads: u64,
    /// 64-bit or byte stores performed.
    pub mem_writes: u64,
    /// `ret` instructions executed.
    pub rets: u64,
    /// `call` instructions executed.
    pub calls: u64,
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Control returned to the sentinel return address; value of `rax`.
    Returned(u64),
    /// A `hlt` instruction was executed.
    Halted,
}

/// Errors the emulator can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum EmuError {
    /// The bytes at `addr` did not decode to an instruction.
    Decode {
        /// Fetch address.
        addr: u64,
        /// Underlying decoder error.
        source: DecodeError,
    },
    /// The instruction budget was exhausted.
    BudgetExceeded {
        /// Instructions executed before giving up.
        executed: u64,
    },
    /// Division by zero.
    DivideByZero {
        /// Address of the faulting instruction.
        addr: u64,
    },
    /// The guest heap is exhausted: an allocation would move the break past
    /// the end of the heap region, into the chain/stack space above it.
    HeapExhausted {
        /// Requested allocation size in bytes.
        requested: u64,
        /// Heap break at the time of the request.
        brk: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Decode { addr, source } => write!(f, "decode fault at {addr:#x}: {source}"),
            EmuError::BudgetExceeded { executed } => {
                write!(f, "instruction budget exhausted after {executed} instructions")
            }
            EmuError::DivideByZero { addr } => write!(f, "division by zero at {addr:#x}"),
            EmuError::HeapExhausted { requested, brk } => {
                write!(f, "guest heap exhausted: {requested} bytes requested at break {brk:#x}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// CPU register file, program counter and flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// The sixteen general-purpose registers.
    pub regs: [u64; 16],
    /// Program counter.
    pub rip: u64,
    /// Condition flags.
    pub flags: Flags,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu { regs: [0; 16], rip: 0, flags: Flags::cleared() }
    }
}

impl Cpu {
    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }
}

/// A resumable snapshot of the full machine state.
///
/// Snapshots power two multi-path idioms: the batched differential verifier
/// restores a pristine post-load state between test cases, and the DSE
/// fork-point explorer captures one at every symbolic branch so a flipped
/// branch can resume from the fork instead of re-running the whole prefix.
#[derive(Debug, Clone)]
pub struct Snapshot {
    cpu: Cpu,
    mem: Memory,
    stats: ExecStats,
    heap_break: u64,
}

impl Snapshot {
    /// Execution statistics at capture time. A run resumed from this
    /// snapshot continues counting from here, so instruction accounting
    /// (and budget exhaustion) stays identical to a run that executed the
    /// whole prefix — only the wall-clock cost of the prefix is skipped.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Program counter at capture time.
    pub fn rip(&self) -> u64 {
        self.cpu.rip
    }
}

/// The RM64 emulator.
#[derive(Debug, Clone)]
pub struct Emulator {
    /// CPU state.
    pub cpu: Cpu,
    /// Guest memory.
    pub mem: Memory,
    stats: ExecStats,
    budget: u64,
    trace: Option<Trace>,
    heap_break: u64,
    icache: ICache,
    icache_enabled: bool,
}

impl Emulator {
    /// Creates an emulator with the image loaded at its stated bases and an
    /// empty stack.
    pub fn new(image: &Image) -> Emulator {
        let mut mem = Memory::new();
        mem.write_bytes(image.text_base, &image.text);
        mem.write_bytes(image.data_base, &image.data);
        let mut cpu = Cpu::default();
        cpu.set_reg(Reg::Rsp, STACK_TOP);
        Emulator {
            cpu,
            mem,
            stats: ExecStats::default(),
            budget: DEFAULT_BUDGET,
            trace: None,
            heap_break: HEAP_BASE,
            icache: ICache::default(),
            icache_enabled: true,
        }
    }

    /// Sets the per-run instruction budget.
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Enables or disables the predecoded instruction cache. Disabled, the
    /// emulator re-decodes every fetch — the reference slow path that the
    /// differential stepper tests (and the `emu_dispatch` bench baseline)
    /// compare the cached fast path against. Results are bit-identical
    /// either way; only the speed differs.
    pub fn set_icache_enabled(&mut self, enabled: bool) {
        self.icache_enabled = enabled;
    }

    /// Enables or disables trace recording (starts a fresh trace).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace = if enabled { Some(Trace::new()) } else { None };
    }

    /// Takes the recorded trace, leaving tracing enabled with a fresh trace.
    pub fn take_trace(&mut self) -> Trace {
        match self.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Trace::new(),
        }
    }

    /// Execution statistics since construction (or the last [`Emulator::reset_stats`]).
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Clears the execution statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.cpu.reg(r)
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.cpu.set_reg(r, v);
    }

    /// Captures a snapshot that [`Emulator::restore`] can later return to.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cpu: self.cpu.clone(),
            mem: self.mem.clone(),
            stats: self.stats,
            heap_break: self.heap_break,
        }
    }

    /// Restores a snapshot taken with [`Emulator::snapshot`].
    ///
    /// Resident pages are reverted in place rather than re-cloned, so a
    /// restore of a mostly-unchanged memory (the batched differential
    /// verifier restores between every test case) costs comparisons, not
    /// allocations — and pages whose contents did not diverge keep their
    /// write generation, which keeps the predecoded instruction cache warm
    /// across restores.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.cpu = snap.cpu.clone();
        self.mem.restore_from(&snap.mem);
        self.stats = snap.stats;
        self.heap_break = snap.heap_break;
    }

    /// Forks a warm copy of this emulator, sharing nothing.
    ///
    /// Cloning is cheap relative to `Emulator::new` + first-touch execution:
    /// the resident pages are copied as flat slices and the predecoded
    /// instruction cache comes along warm (per-page write generations
    /// match), so a forked emulator starts at full dispatch speed. Attack
    /// fleets use this to stamp out per-worker emulators from one warmed-up
    /// instance.
    pub fn fork(&self) -> Emulator {
        self.clone()
    }

    /// A simple `sbrk`-style guest heap allocator used by runtime helpers.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::HeapExhausted`] when the allocation would move
    /// the break past the end of the heap region — continuing would silently
    /// corrupt the chain/stack space above it.
    pub fn heap_alloc(&mut self, size: u64) -> Result<u64, EmuError> {
        let addr = (self.heap_break + 15) & !15;
        match addr.checked_add(size) {
            Some(new_break) if new_break <= HEAP_BASE + HEAP_SIZE => {
                self.heap_break = new_break;
                Ok(addr)
            }
            _ => Err(EmuError::HeapExhausted { requested: size, brk: self.heap_break }),
        }
    }

    fn effective_addr(&self, m: Mem) -> u64 {
        let mut a = m.disp as i64 as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.cpu.reg(b));
        }
        if let Some(i) = m.index {
            a = a.wrapping_add(self.cpu.reg(i).wrapping_mul(m.scale as u64));
        }
        a
    }

    /// Fetches and decodes the instruction at `rip`, through the predecoded
    /// cache when enabled.
    #[inline]
    fn fetch(&mut self) -> Result<(Inst, usize), EmuError> {
        let rip = self.cpu.rip;
        let key = page_key(rip);
        let off = page_offset(rip);
        let (gen, page) = self.mem.fetch_page(rip);
        if self.icache_enabled {
            if let Some((inst, len)) = self.icache.lookup(key, off, gen) {
                return Ok((inst, len as usize));
            }
        }
        let decoded = match page {
            // The fast path decodes straight from the resident page slice.
            Some(bytes) if PAGE_SIZE - off >= FETCH_WINDOW => decode(&bytes[off..]),
            // Near a page boundary (or on an untouched page, which reads as
            // zeros) compose the window byte-buffer across pages.
            _ => {
                let mut buf = [0u8; FETCH_WINDOW];
                self.mem.read_bytes(rip, &mut buf);
                decode(&buf)
            }
        };
        let (inst, len) = decoded.map_err(|source| EmuError::Decode { addr: rip, source })?;
        if self.icache_enabled && off + len <= PAGE_SIZE {
            self.icache.insert(key, off, gen, inst, len as u8);
        }
        Ok((inst, len))
    }

    /// Decodes (without executing) the instruction at the current `rip`,
    /// through the predecoded cache. Attack tools that interleave shadow
    /// analyses with stepping use this instead of re-reading and re-decoding
    /// the fetch window themselves.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Decode`] when the bytes at `rip` are not an
    /// instruction.
    pub fn peek_inst(&mut self) -> Result<(Inst, usize), EmuError> {
        self.fetch()
    }

    fn cost(inst: &Inst) -> u64 {
        let mut c = 1;
        if inst.touches_memory() {
            c += 2;
        }
        match inst {
            Inst::Mul(..) | Inst::MulI(..) => c += 2,
            Inst::Div(..) | Inst::Rem(..) => c += 20,
            Inst::Call(_) | Inst::CallReg(_) | Inst::Ret => c += 1,
            _ => {}
        }
        c
    }

    /// Executes a single instruction.
    ///
    /// Returns `Some(exit)` when the machine reached the return sentinel or a
    /// `hlt`.
    ///
    /// # Errors
    ///
    /// Propagates decode faults, division by zero and budget exhaustion.
    pub fn step(&mut self) -> Result<Option<RunExit>, EmuError> {
        // Monomorphize the hot loop twice so the non-tracing fast path
        // carries no per-step bookkeeping for the trace structures at all.
        if self.trace.is_some() {
            self.step_inner::<true>()
        } else {
            self.step_inner::<false>()
        }
    }

    fn step_inner<const TRACING: bool>(&mut self) -> Result<Option<RunExit>, EmuError> {
        if self.cpu.rip == RETURN_SENTINEL {
            return Ok(Some(RunExit::Returned(self.cpu.reg(Reg::Rax))));
        }
        if self.stats.instructions >= self.budget {
            return Err(EmuError::BudgetExceeded { executed: self.stats.instructions });
        }
        let addr = self.cpu.rip;
        let (inst, len) = self.fetch()?;
        let rsp_before = self.cpu.reg(Reg::Rsp);
        let mut mem_log: Vec<MemAccess> = Vec::new();
        let mut reg_log: Vec<(Reg, u64)> = Vec::new();
        let mut branch_taken = None;

        self.stats.instructions += 1;
        self.stats.cycles += Self::cost(&inst);

        let next = addr.wrapping_add(len as u64);
        self.cpu.rip = next;

        macro_rules! read64 {
            ($a:expr) => {{
                let a = $a;
                let v = self.mem.read_u64(a);
                self.stats.mem_reads += 1;
                if TRACING {
                    mem_log.push(MemAccess { addr: a, value: v, size: 8, is_write: false });
                }
                v
            }};
        }
        macro_rules! write64 {
            ($a:expr, $v:expr) => {{
                let a = $a;
                let v = $v;
                self.mem.write_u64(a, v);
                self.stats.mem_writes += 1;
                if TRACING {
                    mem_log.push(MemAccess { addr: a, value: v, size: 8, is_write: true });
                }
            }};
        }
        macro_rules! setreg {
            ($r:expr, $v:expr) => {{
                let r = $r;
                let v = $v;
                self.cpu.set_reg(r, v);
                if TRACING {
                    reg_log.push((r, v));
                }
            }};
        }

        let mut halted = false;
        match inst {
            Inst::Nop => {}
            Inst::Hlt => halted = true,
            Inst::MovRR(d, s) => setreg!(d, self.cpu.reg(s)),
            Inst::MovRI(d, i) => setreg!(d, i as u64),
            Inst::Load(d, m) => {
                let a = self.effective_addr(m);
                setreg!(d, read64!(a));
            }
            Inst::Store(m, s) => {
                let a = self.effective_addr(m);
                write64!(a, self.cpu.reg(s));
            }
            Inst::StoreI(m, i) => {
                let a = self.effective_addr(m);
                write64!(a, i as i64 as u64);
            }
            Inst::LoadB(d, m) => {
                let a = self.effective_addr(m);
                let v = self.mem.read_u8(a) as u64;
                self.stats.mem_reads += 1;
                if TRACING {
                    mem_log.push(MemAccess { addr: a, value: v, size: 1, is_write: false });
                }
                setreg!(d, v);
            }
            Inst::LoadSxB(d, m) => {
                let a = self.effective_addr(m);
                let v = self.mem.read_u8(a) as i8 as i64 as u64;
                self.stats.mem_reads += 1;
                if TRACING {
                    mem_log.push(MemAccess { addr: a, value: v, size: 1, is_write: false });
                }
                setreg!(d, v);
            }
            Inst::StoreB(m, s) => {
                let a = self.effective_addr(m);
                let v = self.cpu.reg(s) as u8;
                self.mem.write_u8(a, v);
                self.stats.mem_writes += 1;
                if TRACING {
                    mem_log.push(MemAccess { addr: a, value: v as u64, size: 1, is_write: true });
                }
            }
            Inst::Lea(d, m) => setreg!(d, self.effective_addr(m)),
            Inst::Push(r) => {
                let sp = self.cpu.reg(Reg::Rsp).wrapping_sub(8);
                self.cpu.set_reg(Reg::Rsp, sp);
                write64!(sp, self.cpu.reg(r));
            }
            Inst::PushI(i) => {
                let sp = self.cpu.reg(Reg::Rsp).wrapping_sub(8);
                self.cpu.set_reg(Reg::Rsp, sp);
                write64!(sp, i as i64 as u64);
            }
            Inst::Pop(r) => {
                let sp = self.cpu.reg(Reg::Rsp);
                let v = read64!(sp);
                self.cpu.set_reg(Reg::Rsp, sp.wrapping_add(8));
                setreg!(r, v);
            }
            Inst::Alu(op, d, s) => {
                let v = self.alu(op, self.cpu.reg(d), self.cpu.reg(s));
                setreg!(d, v);
            }
            Inst::AluI(op, d, i) => {
                let v = self.alu(op, self.cpu.reg(d), i as i64 as u64);
                setreg!(d, v);
            }
            Inst::AluM(op, d, m) => {
                let a = self.effective_addr(m);
                let rhs = read64!(a);
                let v = self.alu(op, self.cpu.reg(d), rhs);
                setreg!(d, v);
            }
            Inst::AluStore(op, m, s) => {
                let a = self.effective_addr(m);
                let lhs = read64!(a);
                let v = self.alu(op, lhs, self.cpu.reg(s));
                write64!(a, v);
            }
            Inst::Neg(r) => {
                let v = self.cpu.flags.set_neg(self.cpu.reg(r));
                setreg!(r, v);
            }
            Inst::Not(r) => {
                // x86 `not` leaves the flags untouched.
                setreg!(r, !self.cpu.reg(r));
            }
            Inst::Mul(d, s) => {
                let a = self.cpu.reg(d) as i64 as i128;
                let b = self.cpu.reg(s) as i64 as i128;
                let full = a * b;
                let r = full as u64;
                let over = full != (r as i64 as i128);
                self.cpu.flags.cf = over;
                self.cpu.flags.of = over;
                self.cpu.flags.zf = r == 0;
                self.cpu.flags.sf = (r as i64) < 0;
                setreg!(d, r);
            }
            Inst::MulI(d, s, i) => {
                let a = self.cpu.reg(s) as i64 as i128;
                let b = i as i128;
                let full = a * b;
                let r = full as u64;
                let over = full != (r as i64 as i128);
                self.cpu.flags.cf = over;
                self.cpu.flags.of = over;
                self.cpu.flags.zf = r == 0;
                self.cpu.flags.sf = (r as i64) < 0;
                setreg!(d, r);
            }
            Inst::Div(d, s) => {
                let b = self.cpu.reg(s);
                if b == 0 {
                    return Err(EmuError::DivideByZero { addr });
                }
                setreg!(d, self.cpu.reg(d) / b);
            }
            Inst::Rem(d, s) => {
                let b = self.cpu.reg(s);
                if b == 0 {
                    return Err(EmuError::DivideByZero { addr });
                }
                setreg!(d, self.cpu.reg(d) % b);
            }
            Inst::Shl(r, i) => {
                let v = self.shift(self.cpu.reg(r), i as u64, ShiftKind::Left);
                setreg!(r, v);
            }
            Inst::Shr(r, i) => {
                let v = self.shift(self.cpu.reg(r), i as u64, ShiftKind::LogicalRight);
                setreg!(r, v);
            }
            Inst::Sar(r, i) => {
                let v = self.shift(self.cpu.reg(r), i as u64, ShiftKind::ArithmeticRight);
                setreg!(r, v);
            }
            Inst::ShlR(d, s) => {
                let v = self.shift(self.cpu.reg(d), self.cpu.reg(s), ShiftKind::Left);
                setreg!(d, v);
            }
            Inst::ShrR(d, s) => {
                let v = self.shift(self.cpu.reg(d), self.cpu.reg(s), ShiftKind::LogicalRight);
                setreg!(d, v);
            }
            Inst::Cmp(a, b) => {
                self.cpu.flags.set_sub(self.cpu.reg(a), self.cpu.reg(b), false);
            }
            Inst::CmpI(a, i) => {
                self.cpu.flags.set_sub(self.cpu.reg(a), i as i64 as u64, false);
            }
            Inst::CmpMI(m, i) => {
                let a = self.effective_addr(m);
                let lhs = read64!(a);
                self.cpu.flags.set_sub(lhs, i as i64 as u64, false);
            }
            Inst::Test(a, b) => {
                let v = self.cpu.reg(a) & self.cpu.reg(b);
                self.cpu.flags.set_logic(v);
            }
            Inst::TestI(a, i) => {
                let v = self.cpu.reg(a) & (i as i64 as u64);
                self.cpu.flags.set_logic(v);
            }
            Inst::Cmov(c, d, s) => {
                if c.eval(self.cpu.flags) {
                    setreg!(d, self.cpu.reg(s));
                }
            }
            Inst::Set(c, d) => setreg!(d, c.eval(self.cpu.flags) as u64),
            Inst::Jmp(rel) => {
                self.cpu.rip = next.wrapping_add(rel as i64 as u64);
            }
            Inst::JmpReg(r) => {
                self.cpu.rip = self.cpu.reg(r);
            }
            Inst::JmpMem(m) => {
                let a = self.effective_addr(m);
                self.cpu.rip = read64!(a);
            }
            Inst::Jcc(c, rel) => {
                let taken = c.eval(self.cpu.flags);
                branch_taken = Some(taken);
                if taken {
                    self.cpu.rip = next.wrapping_add(rel as i64 as u64);
                }
            }
            Inst::Call(rel) => {
                self.stats.calls += 1;
                let sp = self.cpu.reg(Reg::Rsp).wrapping_sub(8);
                self.cpu.set_reg(Reg::Rsp, sp);
                write64!(sp, next);
                self.cpu.rip = next.wrapping_add(rel as i64 as u64);
            }
            Inst::CallReg(r) => {
                self.stats.calls += 1;
                let target = self.cpu.reg(r);
                let sp = self.cpu.reg(Reg::Rsp).wrapping_sub(8);
                self.cpu.set_reg(Reg::Rsp, sp);
                write64!(sp, next);
                self.cpu.rip = target;
            }
            Inst::Ret => {
                self.stats.rets += 1;
                let sp = self.cpu.reg(Reg::Rsp);
                let target = read64!(sp);
                self.cpu.set_reg(Reg::Rsp, sp.wrapping_add(8));
                self.cpu.rip = target;
            }
            Inst::Leave => {
                let bp = self.cpu.reg(Reg::Rbp);
                self.cpu.set_reg(Reg::Rsp, bp);
                let v = read64!(bp);
                self.cpu.set_reg(Reg::Rsp, bp.wrapping_add(8));
                setreg!(Reg::Rbp, v);
            }
            Inst::XchgRR(a, b) => {
                let va = self.cpu.reg(a);
                let vb = self.cpu.reg(b);
                setreg!(a, vb);
                setreg!(b, va);
            }
            Inst::XchgRM(r, m) => {
                let a = self.effective_addr(m);
                let mv = read64!(a);
                let rv = self.cpu.reg(r);
                write64!(a, rv);
                setreg!(r, mv);
            }
        }

        if TRACING {
            if let Some(trace) = self.trace.as_mut() {
                trace.entries.push(TraceEntry {
                    index: self.stats.instructions - 1,
                    addr,
                    inst,
                    rsp_before,
                    rsp_after: self.cpu.reg(Reg::Rsp),
                    flags_after: self.cpu.flags,
                    reg_writes: reg_log,
                    mem: mem_log,
                    branch_taken,
                });
            }
        }

        if halted {
            return Ok(Some(RunExit::Halted));
        }
        if self.cpu.rip == RETURN_SENTINEL {
            return Ok(Some(RunExit::Returned(self.cpu.reg(Reg::Rax))));
        }
        Ok(None)
    }

    fn alu(&mut self, op: AluOp, a: u64, b: u64) -> u64 {
        let f = &mut self.cpu.flags;
        match op {
            AluOp::Add => f.set_add(a, b, false),
            AluOp::Adc => {
                let carry = f.cf;
                f.set_add(a, b, carry)
            }
            AluOp::Sub => f.set_sub(a, b, false),
            AluOp::Sbb => {
                let borrow = f.cf;
                f.set_sub(a, b, borrow)
            }
            AluOp::And => {
                let r = a & b;
                f.set_logic(r);
                r
            }
            AluOp::Or => {
                let r = a | b;
                f.set_logic(r);
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                f.set_logic(r);
                r
            }
        }
    }

    fn shift(&mut self, value: u64, count: u64, kind: ShiftKind) -> u64 {
        let count = count & 63;
        if count == 0 {
            return value;
        }
        let (result, last_out) = match kind {
            ShiftKind::Left => (value << count, (value >> (64 - count)) & 1),
            ShiftKind::LogicalRight => (value >> count, (value >> (count - 1)) & 1),
            ShiftKind::ArithmeticRight => {
                (((value as i64) >> count) as u64, (value >> (count - 1)) & 1)
            }
        };
        self.cpu.flags.set_logic(result);
        self.cpu.flags.cf = last_out != 0;
        result
    }

    /// Runs until the sentinel return, a halt, an error or budget exhaustion.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Emulator::step`].
    pub fn run(&mut self) -> Result<RunExit, EmuError> {
        loop {
            if let Some(exit) = self.step()? {
                return Ok(exit);
            }
        }
    }

    /// Calls the function at `addr` with up to six integer arguments, using
    /// the SysV-like ABI (`rdi, rsi, rdx, rcx, r8, r9`), and runs it to
    /// completion. Returns `rax`.
    ///
    /// The stack pointer is reset to the top of the stack region before the
    /// call; registers other than the arguments keep their previous values.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Emulator::run`].
    pub fn call(&mut self, addr: u64, args: &[u64]) -> Result<u64, EmuError> {
        assert!(args.len() <= Reg::ARGS.len(), "at most 6 register arguments supported");
        self.cpu.set_reg(Reg::Rsp, STACK_TOP);
        for (r, v) in Reg::ARGS.iter().zip(args) {
            self.cpu.set_reg(*r, *v);
        }
        // Push the sentinel return address.
        let sp = self.cpu.reg(Reg::Rsp) - 8;
        self.cpu.set_reg(Reg::Rsp, sp);
        self.mem.write_u64(sp, RETURN_SENTINEL);
        self.cpu.rip = addr;
        match self.run()? {
            RunExit::Returned(v) => Ok(v),
            RunExit::Halted => Ok(self.cpu.reg(Reg::Rax)),
        }
    }

    /// Convenience wrapper: looks a function up by name in `image` and calls
    /// it. The image must be the one the emulator was created from (or one
    /// with identical layout).
    ///
    /// # Errors
    ///
    /// Returns an error if the function is unknown or execution fails.
    pub fn call_named(&mut self, image: &Image, name: &str, args: &[u64]) -> Result<u64, EmuError> {
        let f =
            image.function(name).unwrap_or_else(|_| panic!("function `{name}` not found in image"));
        self.call(f.addr, args)
    }
}

#[derive(Clone, Copy)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithmeticRight,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::flags::Cond;
    use crate::image::ImageBuilder;

    fn build_and_run(f: impl FnOnce(&mut Assembler), args: &[u64]) -> u64 {
        let mut asm = Assembler::new();
        f(&mut asm);
        let mut b = ImageBuilder::new();
        b.add_function("f", asm);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        emu.call_named(&img, "f", args).unwrap()
    }

    #[test]
    fn simple_arithmetic_function() {
        // f(a, b) = a * 2 + b
        let r = build_and_run(
            |a| {
                a.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                    .inst(Inst::Shl(Reg::Rax, 1))
                    .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rsi))
                    .inst(Inst::Ret);
            },
            &[21, 5],
        );
        assert_eq!(r, 47);
    }

    #[test]
    fn conditional_branch_and_loop() {
        // f(n) = sum of 1..=n
        let r = build_and_run(
            |a| {
                let top = a.new_label();
                let done = a.new_label();
                a.inst(Inst::MovRI(Reg::Rax, 0));
                a.bind(top);
                a.inst(Inst::CmpI(Reg::Rdi, 0));
                a.jcc(Cond::E, done);
                a.inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rdi));
                a.inst(Inst::AluI(AluOp::Sub, Reg::Rdi, 1));
                a.jmp(top);
                a.bind(done);
                a.inst(Inst::Ret);
            },
            &[10],
        );
        assert_eq!(r, 55);
    }

    #[test]
    fn stack_frame_and_memory() {
        // Store the argument in a local, reload it, double it.
        let r = build_and_run(
            |a| {
                a.inst(Inst::Push(Reg::Rbp))
                    .inst(Inst::MovRR(Reg::Rbp, Reg::Rsp))
                    .inst(Inst::AluI(AluOp::Sub, Reg::Rsp, 16))
                    .inst(Inst::Store(Mem::base_disp(Reg::Rbp, -8), Reg::Rdi))
                    .inst(Inst::Load(Reg::Rax, Mem::base_disp(Reg::Rbp, -8)))
                    .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rax))
                    .inst(Inst::Leave)
                    .inst(Inst::Ret);
            },
            &[33],
        );
        assert_eq!(r, 66);
    }

    #[test]
    fn neg_adc_flag_leak_idiom() {
        // The paper's Figure 1 idiom: rcx = (rax != 0) ? 1 : 0 via neg + adc.
        for (input, expected) in [(0u64, 0u64), (7, 1), (u64::MAX, 1)] {
            let r = build_and_run(
                |a| {
                    a.inst(Inst::MovRI(Reg::Rcx, 0))
                        .inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
                        .inst(Inst::Neg(Reg::Rax))
                        .inst(Inst::Alu(AluOp::Adc, Reg::Rcx, Reg::Rcx))
                        .inst(Inst::MovRR(Reg::Rax, Reg::Rcx))
                        .inst(Inst::Ret);
                },
                &[input],
            );
            assert_eq!(r, expected, "input {input}");
        }
    }

    #[test]
    fn call_and_return_between_functions() {
        let mut callee = Assembler::new();
        callee
            .inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
            .inst(Inst::MulI(Reg::Rax, Reg::Rdi, 3))
            .inst(Inst::Ret);
        let mut caller = Assembler::new();
        caller
            .inst(Inst::AluI(AluOp::Add, Reg::Rdi, 1))
            .call_sym("callee")
            .inst(Inst::AluI(AluOp::Add, Reg::Rax, 100))
            .inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("callee", callee);
        b.add_function("caller", caller);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        assert_eq!(emu.call_named(&img, "caller", &[4]).unwrap(), 115);
        assert_eq!(emu.stats().calls, 1);
        assert_eq!(emu.stats().rets, 2);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut asm = Assembler::new();
        let top = asm.new_label();
        asm.bind(top);
        asm.jmp(top);
        let mut b = ImageBuilder::new();
        b.add_function("spin", asm);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        emu.set_budget(1000);
        let err = emu.call_named(&img, "spin", &[]).unwrap_err();
        assert!(matches!(err, EmuError::BudgetExceeded { .. }));
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut asm = Assembler::new();
        asm.inst(Inst::Div(Reg::Rdi, Reg::Rsi))
            .inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
            .inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("div", asm);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        assert!(matches!(emu.call_named(&img, "div", &[1, 0]), Err(EmuError::DivideByZero { .. })));
        let mut emu2 = Emulator::new(&img);
        assert_eq!(emu2.call_named(&img, "div", &[10, 3]).unwrap(), 3);
    }

    #[test]
    fn trace_records_rets_and_branches() {
        let mut asm = Assembler::new();
        let skip = asm.new_label();
        asm.inst(Inst::CmpI(Reg::Rdi, 0));
        asm.jcc(Cond::E, skip);
        asm.inst(Inst::MovRI(Reg::Rax, 1));
        asm.bind(skip);
        asm.inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("f", asm);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        emu.set_tracing(true);
        emu.call_named(&img, "f", &[5]).unwrap();
        let trace = emu.take_trace();
        assert_eq!(trace.ret_indices().len(), 1);
        let branch = trace.iter().find(|e| matches!(e.inst, Inst::Jcc(..))).unwrap();
        assert_eq!(branch.branch_taken, Some(false));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut asm = Assembler::new();
        asm.inst(Inst::AluI(AluOp::Add, Reg::Rdi, 1))
            .inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
            .inst(Inst::Ret);
        let mut b = ImageBuilder::new();
        b.add_function("f", asm);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        let snap = emu.snapshot();
        assert_eq!(emu.call_named(&img, "f", &[1]).unwrap(), 2);
        emu.restore(&snap);
        assert_eq!(emu.stats().instructions, 0);
        assert_eq!(emu.call_named(&img, "f", &[10]).unwrap(), 11);
    }

    #[test]
    fn xchg_rsp_with_memory_switches_stacks() {
        // A miniature stack pivot: save rsp to a cell, load a new stack from
        // the cell's neighbour, then swap back.
        let mut b = ImageBuilder::new();
        let cell = b.add_bss("cell", 16);
        let mut asm = Assembler::new();
        asm.inst(Inst::MovRI(Reg::Rax, cell as i64))
            .inst(Inst::XchgRM(Reg::Rsp, Mem::base(Reg::Rax)))
            .inst(Inst::XchgRM(Reg::Rsp, Mem::base(Reg::Rax)))
            .inst(Inst::MovRR(Reg::Rax, Reg::Rsp))
            .inst(Inst::Ret);
        b.add_function("pivot", asm);
        let img = b.build().unwrap();
        let mut emu = Emulator::new(&img);
        let ret = emu.call_named(&img, "pivot", &[]).unwrap();
        assert_eq!(ret, STACK_TOP - 8, "rsp preserved after double swap");
    }
}
