//! Loadable program images.
//!
//! An [`Image`] is the RM64 equivalent of a (statically linked, position
//! dependent) ELF executable: a `.text` section holding code, a `.data`
//! section holding globals, and a symbol table. The ROP rewriter consumes and
//! produces images: it reads function bytes out of `.text`, replaces them
//! with a pivot stub, appends chains (and the stack-switching array) to
//! `.data`, and may append *artificial gadgets* as dead code at the end of
//! `.text` — exactly the degrees of freedom §IV-A of the paper exploits.

use crate::asm::{AsmError, Assembler, SymbolResolver};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Default load address of the `.text` section.
pub const TEXT_BASE: u64 = 0x0001_0000;
/// Default load address of the `.data` section.
pub const DATA_BASE: u64 = 0x0040_0000;
/// Top of the native stack (the stack grows down from here).
pub const STACK_TOP: u64 = 0x07f0_0000;
/// Size of the native stack region in bytes.
pub const STACK_SIZE: u64 = 0x0010_0000;
/// Base of the guest heap used by the MiniC runtime's bump allocator.
pub const HEAP_BASE: u64 = 0x0100_0000;
/// Size of the guest heap region in bytes.
pub const HEAP_SIZE: u64 = 0x0200_0000;
/// Return address sentinel pushed by the emulator before entering a function.
pub const RETURN_SENTINEL: u64 = 0xdead_0000_beef_0000;

/// A named function inside the image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncSym {
    /// Function name.
    pub name: String,
    /// Absolute address of the first instruction.
    pub addr: u64,
    /// Size of the function body in bytes.
    pub size: u64,
}

/// A fully linked program image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    /// Load address of `.text`.
    pub text_base: u64,
    /// Raw bytes of `.text`.
    pub text: Vec<u8>,
    /// Load address of `.data`.
    pub data_base: u64,
    /// Raw bytes of `.data`.
    pub data: Vec<u8>,
    /// Global symbol table (functions and data objects).
    pub symbols: BTreeMap<String, u64>,
    /// Function symbols with sizes, in address order.
    pub functions: Vec<FuncSym>,
}

/// Error produced when querying or mutating an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The requested symbol does not exist.
    UnknownSymbol(String),
    /// The requested function does not exist.
    UnknownFunction(String),
    /// An address range falls outside the relevant section.
    OutOfRange {
        /// Start address of the offending range.
        addr: u64,
        /// Length of the offending range.
        len: usize,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            ImageError::UnknownFunction(s) => write!(f, "unknown function `{s}`"),
            ImageError::OutOfRange { addr, len } => {
                write!(f, "range {addr:#x}+{len:#x} outside the image")
            }
        }
    }
}

impl std::error::Error for ImageError {}

impl Image {
    /// Address of a symbol.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::UnknownSymbol`] if absent.
    pub fn symbol(&self, name: &str) -> Result<u64, ImageError> {
        self.symbols.get(name).copied().ok_or_else(|| ImageError::UnknownSymbol(name.to_string()))
    }

    /// Function symbol by name.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::UnknownFunction`] if absent.
    pub fn function(&self, name: &str) -> Result<&FuncSym, ImageError> {
        self.functions
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| ImageError::UnknownFunction(name.to_string()))
    }

    /// The function containing `addr`, if any.
    pub fn function_at(&self, addr: u64) -> Option<&FuncSym> {
        self.functions.iter().find(|f| addr >= f.addr && addr < f.addr + f.size)
    }

    /// Whether `addr` lies inside the `.text` section.
    pub fn in_text(&self, addr: u64) -> bool {
        addr >= self.text_base && addr < self.text_base + self.text.len() as u64
    }

    /// Whether `addr` lies inside the `.data` section.
    pub fn in_data(&self, addr: u64) -> bool {
        addr >= self.data_base && addr < self.data_base + self.data.len() as u64
    }

    /// The bytes of the named function.
    ///
    /// # Errors
    ///
    /// Returns an error when the function is unknown.
    pub fn function_bytes(&self, name: &str) -> Result<&[u8], ImageError> {
        let f = self.function(name)?;
        self.text_slice(f.addr, f.size as usize)
    }

    /// A slice of `.text` by absolute address.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfRange`] when the range is not fully inside
    /// `.text`.
    pub fn text_slice(&self, addr: u64, len: usize) -> Result<&[u8], ImageError> {
        let start =
            addr.checked_sub(self.text_base).ok_or(ImageError::OutOfRange { addr, len })? as usize;
        self.text.get(start..start + len).ok_or(ImageError::OutOfRange { addr, len })
    }

    /// A slice of `.data` by absolute address.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfRange`] when the range is not fully inside
    /// `.data`.
    pub fn data_slice(&self, addr: u64, len: usize) -> Result<&[u8], ImageError> {
        let start =
            addr.checked_sub(self.data_base).ok_or(ImageError::OutOfRange { addr, len })? as usize;
        self.data.get(start..start + len).ok_or(ImageError::OutOfRange { addr, len })
    }

    /// Overwrites part of `.text` in place (used to replace a rewritten
    /// function's body with its pivot stub).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfRange`] when the patch does not fit.
    pub fn patch_text(&mut self, addr: u64, bytes: &[u8]) -> Result<(), ImageError> {
        let start = addr
            .checked_sub(self.text_base)
            .ok_or(ImageError::OutOfRange { addr, len: bytes.len() })? as usize;
        let dst = self
            .text
            .get_mut(start..start + bytes.len())
            .ok_or(ImageError::OutOfRange { addr, len: bytes.len() })?;
        dst.copy_from_slice(bytes);
        Ok(())
    }

    /// Appends raw bytes to `.text` (artificial gadgets live here) and
    /// registers an optional symbol for them. Returns the load address.
    pub fn append_text(&mut self, name: Option<&str>, bytes: &[u8]) -> u64 {
        let addr = self.text_base + self.text.len() as u64;
        self.text.extend_from_slice(bytes);
        if let Some(n) = name {
            self.symbols.insert(n.to_string(), addr);
        }
        addr
    }

    /// Appends raw bytes to `.data` (ROP chains, the stack-switching array,
    /// spill slots, the P1 opaque array) with 8-byte alignment and registers
    /// an optional symbol. Returns the load address.
    pub fn append_data(&mut self, name: Option<&str>, bytes: &[u8]) -> u64 {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        if let Some(n) = name {
            self.symbols.insert(n.to_string(), addr);
        }
        addr
    }

    /// Registers (or overwrites) a function symbol, e.g. after rewriting.
    pub fn set_function_size(&mut self, name: &str, size: u64) -> Result<(), ImageError> {
        let f = self
            .functions
            .iter_mut()
            .find(|f| f.name == name)
            .ok_or_else(|| ImageError::UnknownFunction(name.to_string()))?;
        f.size = size;
        Ok(())
    }

    /// Total size of the image in bytes (text + data).
    pub fn size(&self) -> usize {
        self.text.len() + self.data.len()
    }
}

impl SymbolResolver for Image {
    fn resolve(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }
}

enum PendingFunc {
    Asm { name: String, asm: Assembler },
    Raw { name: String, bytes: Vec<u8> },
}

/// Builds an [`Image`] from functions and data objects, resolving
/// cross-references (forward calls, global addresses) in a final link step.
pub struct ImageBuilder {
    text_base: u64,
    data_base: u64,
    data: Vec<u8>,
    symbols: BTreeMap<String, u64>,
    funcs: Vec<PendingFunc>,
}

impl Default for ImageBuilder {
    fn default() -> Self {
        ImageBuilder::new()
    }
}

impl ImageBuilder {
    /// Creates a builder with the default section layout.
    pub fn new() -> ImageBuilder {
        ImageBuilder {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            data: Vec::new(),
            symbols: BTreeMap::new(),
            funcs: Vec::new(),
        }
    }

    /// Overrides the `.text` load address.
    pub fn with_text_base(mut self, base: u64) -> Self {
        self.text_base = base;
        self
    }

    /// Overrides the `.data` load address.
    pub fn with_data_base(mut self, base: u64) -> Self {
        self.data_base = base;
        self
    }

    /// Adds a function from an assembler; its address is assigned at link
    /// time.
    pub fn add_function(&mut self, name: impl Into<String>, asm: Assembler) -> &mut Self {
        self.funcs.push(PendingFunc::Asm { name: name.into(), asm });
        self
    }

    /// Adds a function from already-encoded bytes.
    pub fn add_raw_function(&mut self, name: impl Into<String>, bytes: Vec<u8>) -> &mut Self {
        self.funcs.push(PendingFunc::Raw { name: name.into(), bytes });
        self
    }

    /// Adds an initialized data object and returns its absolute address.
    pub fn add_data(&mut self, name: impl Into<String>, bytes: &[u8]) -> u64 {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.symbols.insert(name.into(), addr);
        addr
    }

    /// Adds a zero-initialized data object of `size` bytes and returns its
    /// absolute address.
    pub fn add_bss(&mut self, name: impl Into<String>, size: usize) -> u64 {
        self.add_data(name, &vec![0u8; size])
    }

    /// Links everything into an [`Image`].
    ///
    /// # Errors
    ///
    /// Fails when a referenced symbol is unknown or a relative branch does
    /// not fit.
    pub fn build(self) -> Result<Image, AsmError> {
        // Pass 1: lay out functions (sizes are resolution-independent).
        let mut addr = self.text_base;
        let mut layout = Vec::new();
        for f in &self.funcs {
            let (name, size) = match f {
                PendingFunc::Asm { name, asm } => (name.clone(), asm.byte_len() as u64),
                PendingFunc::Raw { name, bytes } => (name.clone(), bytes.len() as u64),
            };
            layout.push(FuncSym { name, addr, size });
            // Pad functions to 16 bytes so scanning one function does not
            // run into the next by accident, mirroring compiler alignment.
            addr += size;
            addr = (addr + 15) & !15;
        }

        let mut symbols = self.symbols;
        for f in &layout {
            symbols.insert(f.name.clone(), f.addr);
        }

        // Pass 2: assemble with the complete symbol table.
        let mut text = Vec::with_capacity((addr - self.text_base) as usize);
        for (pending, sym) in self.funcs.iter().zip(&layout) {
            // Padding up to the assigned address (alignment bytes are HLTs so
            // a stray fall-through traps rather than executing garbage).
            while self.text_base + text.len() as u64 != sym.addr {
                text.push(0x01);
            }
            match pending {
                PendingFunc::Asm { asm, .. } => {
                    let bytes = asm.assemble(sym.addr, &symbols)?;
                    text.extend_from_slice(&bytes);
                }
                PendingFunc::Raw { bytes, .. } => text.extend_from_slice(bytes),
            }
        }

        Ok(Image {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data: self.data,
            symbols,
            functions: layout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Inst};
    use crate::reg::Reg;

    fn tiny_image() -> Image {
        let mut b = ImageBuilder::new();
        let mut callee = Assembler::new();
        callee.inst(Inst::MovRI(Reg::Rax, 7)).inst(Inst::Ret);
        let mut main = Assembler::new();
        main.call_sym("callee").inst(Inst::AluI(AluOp::Add, Reg::Rax, 1)).inst(Inst::Ret);
        b.add_function("callee", callee);
        b.add_function("main", main);
        b.add_data("counter", &42u64.to_le_bytes());
        b.build().unwrap()
    }

    #[test]
    fn symbols_and_functions_are_registered() {
        let img = tiny_image();
        assert!(img.symbol("callee").is_ok());
        assert!(img.symbol("main").is_ok());
        assert!(img.symbol("counter").unwrap() >= DATA_BASE);
        assert!(img.function("main").unwrap().size > 0);
        assert!(matches!(img.symbol("missing"), Err(ImageError::UnknownSymbol(_))));
    }

    #[test]
    fn forward_call_resolves_to_function_start() {
        // "main" calls "callee" which is laid out *before* it; also test the
        // reverse by swapping insertion order.
        let mut b = ImageBuilder::new();
        let mut first = Assembler::new();
        first.call_sym("second").inst(Inst::Ret);
        let mut second = Assembler::new();
        second.inst(Inst::Ret);
        b.add_function("first", first);
        b.add_function("second", second);
        let img = b.build().unwrap();
        let bytes = img.function_bytes("first").unwrap();
        let (inst, _) = crate::encode::decode(bytes).unwrap();
        match inst {
            Inst::Call(rel) => {
                let next = img.function("first").unwrap().addr + 5;
                assert_eq!(next.wrapping_add(rel as i64 as u64), img.symbol("second").unwrap());
            }
            other => panic!("expected call, got {other}"),
        }
    }

    #[test]
    fn patch_and_append_apis_work() {
        let mut img = tiny_image();
        let gadget_addr = img.append_text(Some("gadget_pool"), &[crate::encode::OP_RET]);
        assert!(img.in_text(gadget_addr));
        assert_eq!(img.text_slice(gadget_addr, 1).unwrap(), &[crate::encode::OP_RET]);

        let chain_addr = img.append_data(Some("chain0"), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(chain_addr % 8, 0);
        assert!(img.in_data(chain_addr));

        let main_addr = img.function("main").unwrap().addr;
        img.patch_text(main_addr, &[0x01]).unwrap();
        assert_eq!(img.text_slice(main_addr, 1).unwrap(), &[0x01]);

        assert!(img.patch_text(img.text_base + img.text.len() as u64, &[0, 0]).is_err());
    }

    #[test]
    fn function_at_finds_enclosing_function() {
        let img = tiny_image();
        let main = img.function("main").unwrap().clone();
        assert_eq!(img.function_at(main.addr + 1).map(|f| f.name.as_str()), Some("main"));
        assert_eq!(img.function_at(0xffff_ffff), None);
    }

    #[test]
    fn functions_are_aligned_and_padded_with_hlt() {
        let img = tiny_image();
        for f in &img.functions {
            assert_eq!(f.addr % 16, 0, "{} not 16-byte aligned", f.name);
        }
    }
}
