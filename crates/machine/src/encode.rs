//! Binary encoding and decoding of RM64 instructions.
//!
//! The encoding is byte-oriented and variable-length, like x86-64: one opcode
//! byte followed by operand bytes. `ret` encodes to the single byte `0x2A`
//! (x86-64 uses `0xC3`), which is what the gadget scanner looks for, and any
//! byte offset may be used as a decode start — exactly the property that
//! gadget confusion (§V-D of the paper) exploits with unaligned stack-pointer
//! updates.

use crate::flags::Cond;
use crate::inst::{AluOp, Inst, Mem};
use crate::reg::Reg;
use std::fmt;

/// Opcode byte of `ret`; exposed so the gadget scanner can look for it.
pub const OP_RET: u8 = 0x2A;

mod op {
    pub const NOP: u8 = 0x00;
    pub const HLT: u8 = 0x01;
    pub const MOV_RR: u8 = 0x02;
    pub const MOV_RI: u8 = 0x03;
    pub const LOAD: u8 = 0x04;
    pub const STORE: u8 = 0x05;
    pub const STORE_I: u8 = 0x06;
    pub const LOAD_B: u8 = 0x07;
    pub const LOAD_SX_B: u8 = 0x08;
    pub const STORE_B: u8 = 0x09;
    pub const LEA: u8 = 0x0A;
    pub const PUSH: u8 = 0x0B;
    pub const PUSH_I: u8 = 0x0C;
    pub const POP: u8 = 0x0D;
    pub const ALU: u8 = 0x0E;
    pub const ALU_I: u8 = 0x0F;
    pub const ALU_M: u8 = 0x10;
    pub const ALU_STORE: u8 = 0x11;
    pub const NEG: u8 = 0x12;
    pub const NOT: u8 = 0x13;
    pub const MUL: u8 = 0x14;
    pub const MUL_I: u8 = 0x15;
    pub const DIV: u8 = 0x16;
    pub const REM: u8 = 0x17;
    pub const SHL: u8 = 0x18;
    pub const SHR: u8 = 0x19;
    pub const SAR: u8 = 0x1A;
    pub const SHL_R: u8 = 0x1B;
    pub const SHR_R: u8 = 0x1C;
    pub const CMP: u8 = 0x1D;
    pub const CMP_I: u8 = 0x1E;
    pub const CMP_MI: u8 = 0x1F;
    pub const TEST: u8 = 0x20;
    pub const TEST_I: u8 = 0x21;
    pub const CMOV: u8 = 0x22;
    pub const SET: u8 = 0x23;
    pub const JMP: u8 = 0x24;
    pub const JMP_REG: u8 = 0x25;
    pub const JMP_MEM: u8 = 0x26;
    pub const JCC: u8 = 0x27;
    pub const CALL: u8 = 0x28;
    pub const CALL_REG: u8 = 0x29;
    pub const RET: u8 = super::OP_RET;
    pub const LEAVE: u8 = 0x2B;
    pub const XCHG_RR: u8 = 0x2C;
    pub const XCHG_RM: u8 = 0x2D;
}

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended in the middle of an instruction.
    Truncated,
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// A register operand byte was not a valid register.
    BadRegister(u8),
    /// A condition-code byte was not a valid condition.
    BadCondition(u8),
    /// An ALU-operation byte was not a valid operation.
    BadAluOp(u8),
    /// A memory-operand scale byte was not 1, 2, 4 or 8.
    BadScale(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "invalid register encoding {b:#04x}"),
            DecodeError::BadCondition(b) => write!(f, "invalid condition encoding {b:#04x}"),
            DecodeError::BadAluOp(b) => write!(f, "invalid ALU operation encoding {b:#04x}"),
            DecodeError::BadScale(b) => write!(f, "invalid memory scale {b:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const NO_REG: u8 = 0xFF;

fn put_reg(out: &mut Vec<u8>, r: Reg) {
    out.push(r.index() as u8);
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_mem(out: &mut Vec<u8>, m: Mem) {
    out.push(m.base.map(|r| r.index() as u8).unwrap_or(NO_REG));
    out.push(m.index.map(|r| r.index() as u8).unwrap_or(NO_REG));
    out.push(m.scale);
    put_i32(out, m.disp);
}

/// Encodes a single instruction, appending its bytes to `out`.
pub fn encode_into(inst: &Inst, out: &mut Vec<u8>) {
    use Inst::*;
    match *inst {
        Nop => out.push(op::NOP),
        Hlt => out.push(op::HLT),
        MovRR(d, s) => {
            out.push(op::MOV_RR);
            put_reg(out, d);
            put_reg(out, s);
        }
        MovRI(d, i) => {
            out.push(op::MOV_RI);
            put_reg(out, d);
            put_i64(out, i);
        }
        Load(d, m) => {
            out.push(op::LOAD);
            put_reg(out, d);
            put_mem(out, m);
        }
        Store(m, s) => {
            out.push(op::STORE);
            put_reg(out, s);
            put_mem(out, m);
        }
        StoreI(m, i) => {
            out.push(op::STORE_I);
            put_mem(out, m);
            put_i32(out, i);
        }
        LoadB(d, m) => {
            out.push(op::LOAD_B);
            put_reg(out, d);
            put_mem(out, m);
        }
        LoadSxB(d, m) => {
            out.push(op::LOAD_SX_B);
            put_reg(out, d);
            put_mem(out, m);
        }
        StoreB(m, s) => {
            out.push(op::STORE_B);
            put_reg(out, s);
            put_mem(out, m);
        }
        Lea(d, m) => {
            out.push(op::LEA);
            put_reg(out, d);
            put_mem(out, m);
        }
        Push(r) => {
            out.push(op::PUSH);
            put_reg(out, r);
        }
        PushI(i) => {
            out.push(op::PUSH_I);
            put_i32(out, i);
        }
        Pop(r) => {
            out.push(op::POP);
            put_reg(out, r);
        }
        Alu(o, d, s) => {
            out.push(op::ALU);
            out.push(o.index());
            put_reg(out, d);
            put_reg(out, s);
        }
        AluI(o, d, i) => {
            out.push(op::ALU_I);
            out.push(o.index());
            put_reg(out, d);
            put_i32(out, i);
        }
        AluM(o, d, m) => {
            out.push(op::ALU_M);
            out.push(o.index());
            put_reg(out, d);
            put_mem(out, m);
        }
        AluStore(o, m, s) => {
            out.push(op::ALU_STORE);
            out.push(o.index());
            put_reg(out, s);
            put_mem(out, m);
        }
        Neg(r) => {
            out.push(op::NEG);
            put_reg(out, r);
        }
        Not(r) => {
            out.push(op::NOT);
            put_reg(out, r);
        }
        Mul(d, s) => {
            out.push(op::MUL);
            put_reg(out, d);
            put_reg(out, s);
        }
        MulI(d, s, i) => {
            out.push(op::MUL_I);
            put_reg(out, d);
            put_reg(out, s);
            put_i32(out, i);
        }
        Div(d, s) => {
            out.push(op::DIV);
            put_reg(out, d);
            put_reg(out, s);
        }
        Rem(d, s) => {
            out.push(op::REM);
            put_reg(out, d);
            put_reg(out, s);
        }
        Shl(r, i) => {
            out.push(op::SHL);
            put_reg(out, r);
            out.push(i);
        }
        Shr(r, i) => {
            out.push(op::SHR);
            put_reg(out, r);
            out.push(i);
        }
        Sar(r, i) => {
            out.push(op::SAR);
            put_reg(out, r);
            out.push(i);
        }
        ShlR(d, s) => {
            out.push(op::SHL_R);
            put_reg(out, d);
            put_reg(out, s);
        }
        ShrR(d, s) => {
            out.push(op::SHR_R);
            put_reg(out, d);
            put_reg(out, s);
        }
        Cmp(a, b) => {
            out.push(op::CMP);
            put_reg(out, a);
            put_reg(out, b);
        }
        CmpI(a, i) => {
            out.push(op::CMP_I);
            put_reg(out, a);
            put_i32(out, i);
        }
        CmpMI(m, i) => {
            out.push(op::CMP_MI);
            put_mem(out, m);
            put_i32(out, i);
        }
        Test(a, b) => {
            out.push(op::TEST);
            put_reg(out, a);
            put_reg(out, b);
        }
        TestI(a, i) => {
            out.push(op::TEST_I);
            put_reg(out, a);
            put_i32(out, i);
        }
        Cmov(c, d, s) => {
            out.push(op::CMOV);
            out.push(c.index());
            put_reg(out, d);
            put_reg(out, s);
        }
        Set(c, d) => {
            out.push(op::SET);
            out.push(c.index());
            put_reg(out, d);
        }
        Jmp(o) => {
            out.push(op::JMP);
            put_i32(out, o);
        }
        JmpReg(r) => {
            out.push(op::JMP_REG);
            put_reg(out, r);
        }
        JmpMem(m) => {
            out.push(op::JMP_MEM);
            put_mem(out, m);
        }
        Jcc(c, o) => {
            out.push(op::JCC);
            out.push(c.index());
            put_i32(out, o);
        }
        Call(o) => {
            out.push(op::CALL);
            put_i32(out, o);
        }
        CallReg(r) => {
            out.push(op::CALL_REG);
            put_reg(out, r);
        }
        Ret => out.push(op::RET),
        Leave => out.push(op::LEAVE),
        XchgRR(a, b) => {
            out.push(op::XCHG_RR);
            put_reg(out, a);
            put_reg(out, b);
        }
        XchgRM(r, m) => {
            out.push(op::XCHG_RM);
            put_reg(out, r);
            put_mem(out, m);
        }
    }
}

/// Encodes a single instruction into a freshly allocated byte vector.
pub fn encode(inst: &Inst) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    encode_into(inst, &mut out);
    out
}

/// Encodes a sequence of instructions back-to-back.
pub fn encode_all<'a, I: IntoIterator<Item = &'a Inst>>(insts: I) -> Vec<u8> {
    let mut out = Vec::new();
    for i in insts {
        encode_into(i, &mut out);
    }
    out
}

/// Length in bytes of an instruction's encoding.
pub fn encoded_len(inst: &Inst) -> usize {
    // Encoding is cheap; reuse it rather than maintaining a parallel table.
    encode(inst).len()
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        Reg::from_index(b).ok_or(DecodeError::BadRegister(b))
    }

    fn cond(&mut self) -> Result<Cond, DecodeError> {
        let b = self.u8()?;
        Cond::from_index(b).ok_or(DecodeError::BadCondition(b))
    }

    fn alu(&mut self) -> Result<AluOp, DecodeError> {
        let b = self.u8()?;
        AluOp::from_index(b).ok_or(DecodeError::BadAluOp(b))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.bytes[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(i32::from_le_bytes(buf))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        if self.pos + 8 > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(i64::from_le_bytes(buf))
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let base_b = self.u8()?;
        let index_b = self.u8()?;
        let scale = self.u8()?;
        let disp = self.i32()?;
        let base = if base_b == NO_REG {
            None
        } else {
            Some(Reg::from_index(base_b).ok_or(DecodeError::BadRegister(base_b))?)
        };
        let index = if index_b == NO_REG {
            None
        } else {
            Some(Reg::from_index(index_b).ok_or(DecodeError::BadRegister(index_b))?)
        };
        if !matches!(scale, 1 | 2 | 4 | 8) {
            return Err(DecodeError::BadScale(scale));
        }
        Ok(Mem { base, index, scale, disp })
    }
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes it occupies.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the bytes do not form a valid instruction;
/// speculative decoding at arbitrary offsets (gadget scanning) relies on this
/// to reject non-code bytes.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let opcode = c.u8()?;
    let inst = match opcode {
        op::NOP => Inst::Nop,
        op::HLT => Inst::Hlt,
        op::MOV_RR => Inst::MovRR(c.reg()?, c.reg()?),
        op::MOV_RI => Inst::MovRI(c.reg()?, c.i64()?),
        op::LOAD => Inst::Load(c.reg()?, c.mem()?),
        op::STORE => {
            let s = c.reg()?;
            Inst::Store(c.mem()?, s)
        }
        op::STORE_I => Inst::StoreI(c.mem()?, c.i32()?),
        op::LOAD_B => Inst::LoadB(c.reg()?, c.mem()?),
        op::LOAD_SX_B => Inst::LoadSxB(c.reg()?, c.mem()?),
        op::STORE_B => {
            let s = c.reg()?;
            Inst::StoreB(c.mem()?, s)
        }
        op::LEA => Inst::Lea(c.reg()?, c.mem()?),
        op::PUSH => Inst::Push(c.reg()?),
        op::PUSH_I => Inst::PushI(c.i32()?),
        op::POP => Inst::Pop(c.reg()?),
        op::ALU => Inst::Alu(c.alu()?, c.reg()?, c.reg()?),
        op::ALU_I => Inst::AluI(c.alu()?, c.reg()?, c.i32()?),
        op::ALU_M => Inst::AluM(c.alu()?, c.reg()?, c.mem()?),
        op::ALU_STORE => {
            let o = c.alu()?;
            let s = c.reg()?;
            Inst::AluStore(o, c.mem()?, s)
        }
        op::NEG => Inst::Neg(c.reg()?),
        op::NOT => Inst::Not(c.reg()?),
        op::MUL => Inst::Mul(c.reg()?, c.reg()?),
        op::MUL_I => Inst::MulI(c.reg()?, c.reg()?, c.i32()?),
        op::DIV => Inst::Div(c.reg()?, c.reg()?),
        op::REM => Inst::Rem(c.reg()?, c.reg()?),
        op::SHL => Inst::Shl(c.reg()?, c.u8()?),
        op::SHR => Inst::Shr(c.reg()?, c.u8()?),
        op::SAR => Inst::Sar(c.reg()?, c.u8()?),
        op::SHL_R => Inst::ShlR(c.reg()?, c.reg()?),
        op::SHR_R => Inst::ShrR(c.reg()?, c.reg()?),
        op::CMP => Inst::Cmp(c.reg()?, c.reg()?),
        op::CMP_I => Inst::CmpI(c.reg()?, c.i32()?),
        op::CMP_MI => Inst::CmpMI(c.mem()?, c.i32()?),
        op::TEST => Inst::Test(c.reg()?, c.reg()?),
        op::TEST_I => Inst::TestI(c.reg()?, c.i32()?),
        op::CMOV => Inst::Cmov(c.cond()?, c.reg()?, c.reg()?),
        op::SET => Inst::Set(c.cond()?, c.reg()?),
        op::JMP => Inst::Jmp(c.i32()?),
        op::JMP_REG => Inst::JmpReg(c.reg()?),
        op::JMP_MEM => Inst::JmpMem(c.mem()?),
        op::JCC => Inst::Jcc(c.cond()?, c.i32()?),
        op::CALL => Inst::Call(c.i32()?),
        op::CALL_REG => Inst::CallReg(c.reg()?),
        op::RET => Inst::Ret,
        op::LEAVE => Inst::Leave,
        op::XCHG_RR => Inst::XchgRR(c.reg()?, c.reg()?),
        op::XCHG_RM => Inst::XchgRM(c.reg()?, c.mem()?),
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((inst, c.pos))
}

/// Decodes a straight-line sequence of instructions covering all of `bytes`.
///
/// # Errors
///
/// Fails if any instruction is malformed or the final instruction is
/// truncated.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<(usize, Inst)>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (inst, len) = decode(&bytes[pos..])?;
        out.push((pos, inst));
        pos += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cond;

    fn sample_insts() -> Vec<Inst> {
        use Inst::*;
        vec![
            Nop,
            Hlt,
            MovRR(Reg::Rax, Reg::Rdi),
            MovRI(Reg::Rcx, -12345678901234),
            Load(Reg::Rax, Mem::base_disp(Reg::Rbp, -8)),
            Store(Mem::base_index(Reg::Rdi, Reg::Rcx, 8, 16), Reg::Rdx),
            StoreI(Mem::abs(0x4000), -1),
            LoadB(Reg::Rax, Mem::base(Reg::Rsi)),
            LoadSxB(Reg::Rbx, Mem::base_disp(Reg::Rsi, 3)),
            StoreB(Mem::base(Reg::Rdi), Reg::Rax),
            Lea(Reg::Rax, Mem::base_index(Reg::Rbx, Reg::Rcx, 4, -32)),
            Push(Reg::Rbp),
            PushI(0x1234),
            Pop(Reg::Rdi),
            Alu(AluOp::Adc, Reg::Rcx, Reg::Rcx),
            AluI(AluOp::Add, Reg::Rsp, 0x18),
            AluM(AluOp::Xor, Reg::Rax, Mem::base(Reg::Rdi)),
            AluStore(AluOp::Sub, Mem::base_disp(Reg::Rbp, -16), Reg::Rax),
            Neg(Reg::Rax),
            Not(Reg::Rdx),
            Mul(Reg::Rax, Reg::Rbx),
            MulI(Reg::Rax, Reg::Rbx, 24),
            Div(Reg::Rax, Reg::Rcx),
            Rem(Reg::Rdx, Reg::Rcx),
            Shl(Reg::Rax, 3),
            Shr(Reg::Rbx, 63),
            Sar(Reg::Rcx, 1),
            ShlR(Reg::Rax, Reg::Rcx),
            ShrR(Reg::Rbx, Reg::Rcx),
            Cmp(Reg::Rax, Reg::Rbx),
            CmpI(Reg::Rdi, 0),
            CmpMI(Mem::base_disp(Reg::Rsp, 8), 42),
            Test(Reg::Rax, Reg::Rax),
            TestI(Reg::Rcx, 1),
            Cmov(Cond::Ne, Reg::Rax, Reg::Rbx),
            Set(Cond::L, Reg::Rdx),
            Jmp(-128),
            JmpReg(Reg::Rax),
            JmpMem(Mem::base_index(Reg::Rbx, Reg::Rax, 8, 0)),
            Jcc(Cond::A, 1024),
            Call(0x1000),
            CallReg(Reg::R11),
            Ret,
            Leave,
            XchgRR(Reg::Rax, Reg::Rsp),
            XchgRM(Reg::Rsp, Mem::base(Reg::Rax)),
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for inst in sample_insts() {
            let bytes = encode(&inst);
            let (decoded, len) = decode(&bytes).expect("decodes");
            assert_eq!(decoded, inst);
            assert_eq!(len, bytes.len());
            assert_eq!(encoded_len(&inst), bytes.len());
        }
    }

    #[test]
    fn sequence_roundtrips() {
        let insts = sample_insts();
        let bytes = encode_all(&insts);
        let decoded = decode_all(&bytes).expect("decodes");
        assert_eq!(decoded.len(), insts.len());
        for ((_, d), orig) in decoded.iter().zip(&insts) {
            assert_eq!(d, orig);
        }
    }

    #[test]
    fn ret_is_single_byte() {
        assert_eq!(encode(&Inst::Ret), vec![OP_RET]);
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(&[0xF0]), Err(DecodeError::BadOpcode(0xF0)));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn truncated_operand_rejected() {
        let bytes = encode(&Inst::MovRI(Reg::Rax, 0x11223344));
        assert_eq!(decode(&bytes[..5]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_register_and_scale_rejected() {
        assert_eq!(decode(&[op::PUSH, 16]), Err(DecodeError::BadRegister(16)));
        // Load with scale 3.
        let mut bytes = vec![op::LOAD, 0 /* rax */];
        bytes.extend_from_slice(&[0xFF, 0xFF, 3, 0, 0, 0, 0]);
        assert_eq!(decode(&bytes), Err(DecodeError::BadScale(3)));
    }
}
