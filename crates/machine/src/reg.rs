//! General-purpose registers of the RM64 machine.
//!
//! RM64 mirrors the x86-64 register file: sixteen 64-bit general purpose
//! registers, one of which ([`Reg::Rsp`]) is the stack pointer that the
//! return-oriented-programming encoding repurposes as a virtual program
//! counter. Register identity (not just count) matters to the rewriter:
//! the ABI argument registers and the callee-saved set follow the SysV
//! convention so that compiler-shaped code from `raindrop-synth` looks like
//! the gcc output the paper rewrites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A general-purpose 64-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; function return value.
    Rax = 0,
    /// Fourth argument register.
    Rcx = 1,
    /// Third argument register.
    Rdx = 2,
    /// Callee-saved.
    Rbx = 3,
    /// Stack pointer. In ROP chains this acts as the virtual program counter.
    Rsp = 4,
    /// Frame pointer (callee-saved).
    Rbp = 5,
    /// Second argument register.
    Rsi = 6,
    /// First argument register.
    Rdi = 7,
    /// Fifth argument register.
    R8 = 8,
    /// Sixth argument register.
    R9 = 9,
    /// Caller-saved scratch.
    R10 = 10,
    /// Caller-saved scratch.
    R11 = 11,
    /// Callee-saved.
    R12 = 12,
    /// Callee-saved.
    R13 = 13,
    /// Callee-saved.
    R14 = 14,
    /// Callee-saved.
    R15 = 15,
}

impl Reg {
    /// All sixteen registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Argument-passing registers, in order (SysV-like ABI).
    pub const ARGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];

    /// Registers a callee must preserve.
    pub const CALLEE_SAVED: [Reg; 6] = [Reg::Rbx, Reg::Rbp, Reg::R12, Reg::R13, Reg::R14, Reg::R15];

    /// Caller-saved (scratch) registers, excluding the stack pointer.
    pub const CALLER_SAVED: [Reg; 9] =
        [Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::Rdi, Reg::R8, Reg::R9, Reg::R10, Reg::R11];

    /// Numeric encoding of the register (0..=15).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its numeric encoding.
    ///
    /// Returns `None` when `idx >= 16`.
    pub fn from_index(idx: u8) -> Option<Reg> {
        Reg::ALL.get(idx as usize).copied()
    }

    /// Returns `true` for the stack pointer.
    #[inline]
    pub fn is_sp(self) -> bool {
        self == Reg::Rsp
    }

    /// The conventional lowercase mnemonic (e.g. `"rax"`).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A compact set of registers, used pervasively by liveness analysis and the
/// register allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RegSet(u16);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// The set of all sixteen registers.
    pub const FULL: RegSet = RegSet(u16::MAX);

    /// Creates an empty set.
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// Creates a set from an iterator of registers.
    pub fn from_regs<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }

    /// Inserts a register; returns `true` if it was not present.
    pub fn insert(&mut self, r: Reg) -> bool {
        let bit = 1u16 << r.index();
        let was = self.0 & bit != 0;
        self.0 |= bit;
        !was
    }

    /// Removes a register; returns `true` if it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let bit = 1u16 << r.index();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, r: Reg) -> bool {
        self.0 & (1u16 << r.index()) != 0
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Iterates over the members in encoding order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        let bits = self.0;
        Reg::ALL.iter().copied().filter(move |r| bits & (1u16 << r.index()) != 0)
    }

    /// Raw bitmask (bit *i* set means register *i* is a member).
    pub fn bits(&self) -> u16 {
        self.0
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        RegSet::from_regs(iter)
    }
}

impl Extend<Reg> for RegSet {
    fn extend<T: IntoIterator<Item = Reg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_roundtrip_through_index() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), Some(r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn regset_insert_remove_contains() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Reg::Rax));
        assert!(!s.insert(Reg::Rax));
        assert!(s.contains(Reg::Rax));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Reg::Rax));
        assert!(!s.remove(Reg::Rax));
        assert!(s.is_empty());
    }

    #[test]
    fn regset_set_algebra() {
        let a = RegSet::from_regs([Reg::Rax, Reg::Rbx, Reg::Rcx]);
        let b = RegSet::from_regs([Reg::Rbx, Reg::Rdx]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(Reg::Rbx));
        assert_eq!(a.difference(b).len(), 2);
        assert!(!a.difference(b).contains(Reg::Rbx));
    }

    #[test]
    fn regset_iterates_in_encoding_order() {
        let s = RegSet::from_regs([Reg::Rdi, Reg::Rax, Reg::R15]);
        let v: Vec<Reg> = s.iter().collect();
        assert_eq!(v, vec![Reg::Rax, Reg::Rdi, Reg::R15]);
    }

    #[test]
    fn abi_sets_are_disjoint_where_expected() {
        for r in Reg::CALLEE_SAVED {
            assert!(!Reg::CALLER_SAVED.contains(&r));
        }
        assert!(!Reg::CALLER_SAVED.contains(&Reg::Rsp));
        assert!(!Reg::CALLEE_SAVED.contains(&Reg::Rsp));
    }
}
