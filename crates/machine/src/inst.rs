//! The RM64 instruction set.
//!
//! RM64 is a compact, x86-64-shaped instruction set: variable-length byte
//! encoding, a hardware stack through `push`/`pop`/`call`/`ret`, condition
//! flags, conditional moves and memory operands of the form
//! `base + index*scale + disp`. It is deliberately a *subset* of x86-64 —
//! just large enough that (a) a small compiler can target it, (b) a ROP chain
//! written for it uses exactly the idioms of the paper (`pop r; ret`,
//! `add rsp, r; ret`, `neg`/`adc` flag leaks, `xchg rsp, [mem]; jmp r`), and
//! (c) byte-level gadget scanning and unaligned decoding behave like on the
//! real ISA.

use crate::flags::Cond;
use crate::reg::{Reg, RegSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary ALU operations that read and write their destination register and
/// update the condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Bitwise AND.
    And = 2,
    /// Bitwise OR.
    Or = 3,
    /// Bitwise XOR.
    Xor = 4,
    /// Add-with-carry (reads CF).
    Adc = 5,
    /// Subtract-with-borrow (reads CF).
    Sbb = 6,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 7] =
        [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Adc, AluOp::Sbb];

    /// Numeric encoding.
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Decodes the numeric encoding.
    pub fn from_index(idx: u8) -> Option<AluOp> {
        AluOp::ALL.get(idx as usize).copied()
    }

    /// Whether the operation reads the carry flag.
    pub fn reads_carry(self) -> bool {
        matches!(self, AluOp::Adc | AluOp::Sbb)
    }

    /// Mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Adc => "adc",
            AluOp::Sbb => "sbb",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional index register.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Signed displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base]`
    pub fn base(base: Reg) -> Mem {
        Mem { base: Some(base), index: None, scale: 1, disp: 0 }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem { base: Some(base), index: None, scale: 1, disp }
    }

    /// `[base + index*scale + disp]`
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32) -> Mem {
        Mem { base: Some(base), index: Some(index), scale, disp }
    }

    /// `[disp]` — absolute addressing (what RIP-relative accesses to global
    /// storage get rewritten into, §IV-B1).
    pub fn abs(disp: i32) -> Mem {
        Mem { base: None, index: None, scale: 1, disp }
    }

    /// Registers read when computing the effective address.
    pub fn regs(&self) -> RegSet {
        let mut s = RegSet::new();
        if let Some(b) = self.base {
            s.insert(b);
        }
        if let Some(i) = self.index {
            s.insert(i);
        }
        s
    }

    /// Whether the address depends on the stack pointer.
    pub fn uses_sp(&self) -> bool {
        self.base == Some(Reg::Rsp) || self.index == Some(Reg::Rsp)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some(i) = self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp >= 0 {
                    write!(f, " + {:#x}", self.disp)?;
                } else {
                    write!(f, " - {:#x}", -(self.disp as i64))?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// A single RM64 instruction.
///
/// The operand order follows Intel syntax: destination first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Halt the machine (used as a top-level sentinel, never emitted by the
    /// code generator inside functions).
    Hlt,
    /// `mov dst, src`
    MovRR(Reg, Reg),
    /// `mov dst, imm64`
    MovRI(Reg, i64),
    /// `mov dst, qword [mem]`
    Load(Reg, Mem),
    /// `mov qword [mem], src`
    Store(Mem, Reg),
    /// `mov qword [mem], imm32` (sign-extended)
    StoreI(Mem, i32),
    /// `movzx dst, byte [mem]`
    LoadB(Reg, Mem),
    /// `movsx dst, byte [mem]`
    LoadSxB(Reg, Mem),
    /// `mov byte [mem], src_low8`
    StoreB(Mem, Reg),
    /// `lea dst, [mem]`
    Lea(Reg, Mem),
    /// `push src`
    Push(Reg),
    /// `push imm32` (sign-extended)
    PushI(i32),
    /// `pop dst`
    Pop(Reg),
    /// `op dst, src`
    Alu(AluOp, Reg, Reg),
    /// `op dst, imm32` (sign-extended)
    AluI(AluOp, Reg, i32),
    /// `op dst, qword [mem]`
    AluM(AluOp, Reg, Mem),
    /// `op qword [mem], src`
    AluStore(AluOp, Mem, Reg),
    /// `neg dst`
    Neg(Reg),
    /// `not dst`
    Not(Reg),
    /// `imul dst, src` (low 64 bits)
    Mul(Reg, Reg),
    /// `imul dst, src, imm32`
    MulI(Reg, Reg, i32),
    /// `div dst, src` — unsigned division, quotient in `dst`.
    ///
    /// This deviates from the x86-64 `RDX:RAX` convention to keep the code
    /// generator simple; the deviation is irrelevant to the obfuscation.
    Div(Reg, Reg),
    /// `rem dst, src` — unsigned remainder in `dst` (same note as [`Inst::Div`]).
    Rem(Reg, Reg),
    /// `shl dst, imm8`
    Shl(Reg, u8),
    /// `shr dst, imm8` (logical)
    Shr(Reg, u8),
    /// `sar dst, imm8` (arithmetic)
    Sar(Reg, u8),
    /// `shl dst, src` (variable shift, low 6 bits of `src`)
    ShlR(Reg, Reg),
    /// `shr dst, src` (variable logical shift)
    ShrR(Reg, Reg),
    /// `cmp a, b`
    Cmp(Reg, Reg),
    /// `cmp a, imm32`
    CmpI(Reg, i32),
    /// `cmp qword [mem], imm32`
    CmpMI(Mem, i32),
    /// `test a, b`
    Test(Reg, Reg),
    /// `test a, imm32`
    TestI(Reg, i32),
    /// `cmov<cc> dst, src`
    Cmov(Cond, Reg, Reg),
    /// `set<cc> dst` — dst = cc ? 1 : 0 (whole register, unlike x86's 8-bit).
    Set(Cond, Reg),
    /// `jmp rel32` — relative to the address of the *next* instruction.
    Jmp(i32),
    /// `jmp reg`
    JmpReg(Reg),
    /// `jmp qword [mem]`
    JmpMem(Mem),
    /// `j<cc> rel32`
    Jcc(Cond, i32),
    /// `call rel32`
    Call(i32),
    /// `call reg`
    CallReg(Reg),
    /// `ret`
    Ret,
    /// `leave` (`mov rsp, rbp; pop rbp`)
    Leave,
    /// `xchg a, b`
    XchgRR(Reg, Reg),
    /// `xchg reg, qword [mem]`
    XchgRM(Reg, Mem),
}

impl Inst {
    /// Registers the instruction reads (including address computations and
    /// the implicit stack-pointer reads of `push`/`pop`/`ret`/`call`).
    pub fn regs_read(&self) -> RegSet {
        use Inst::*;
        let mut s = RegSet::new();
        match *self {
            Nop | Hlt => {}
            MovRR(_, src) => {
                s.insert(src);
            }
            MovRI(_, _) => {}
            Load(_, m) | LoadB(_, m) | LoadSxB(_, m) | Lea(_, m) => {
                s = m.regs();
            }
            Store(m, src) | StoreB(m, src) | AluStore(_, m, src) => {
                s = m.regs();
                s.insert(src);
            }
            StoreI(m, _) | CmpMI(m, _) | JmpMem(m) => {
                s = m.regs();
            }
            Push(r) => {
                s.insert(r);
                s.insert(Reg::Rsp);
            }
            PushI(_) => {
                s.insert(Reg::Rsp);
            }
            Pop(_) => {
                s.insert(Reg::Rsp);
            }
            Alu(_, dst, src)
            | Mul(dst, src)
            | Div(dst, src)
            | Rem(dst, src)
            | ShlR(dst, src)
            | ShrR(dst, src) => {
                s.insert(dst);
                s.insert(src);
            }
            AluI(_, dst, _) | Shl(dst, _) | Shr(dst, _) | Sar(dst, _) | Neg(dst) | Not(dst) => {
                s.insert(dst);
            }
            AluM(_, dst, m) => {
                s = m.regs();
                s.insert(dst);
            }
            MulI(_, src, _) => {
                s.insert(src);
            }
            Cmp(a, b) | Test(a, b) => {
                s.insert(a);
                s.insert(b);
            }
            CmpI(a, _) | TestI(a, _) => {
                s.insert(a);
            }
            Cmov(_, dst, src) => {
                s.insert(dst);
                s.insert(src);
            }
            Set(_, _) => {}
            Jmp(_) | Jcc(_, _) => {}
            JmpReg(r) | CallReg(r) => {
                s.insert(r);
                if matches!(self, CallReg(_)) {
                    s.insert(Reg::Rsp);
                }
            }
            Call(_) => {
                s.insert(Reg::Rsp);
            }
            Ret => {
                s.insert(Reg::Rsp);
            }
            Leave => {
                s.insert(Reg::Rbp);
                s.insert(Reg::Rsp);
            }
            XchgRR(a, b) => {
                s.insert(a);
                s.insert(b);
            }
            XchgRM(r, m) => {
                s = m.regs();
                s.insert(r);
            }
        }
        s
    }

    /// Registers the instruction writes (including the implicit stack-pointer
    /// updates of `push`/`pop`/`ret`/`call`).
    pub fn regs_written(&self) -> RegSet {
        use Inst::*;
        let mut s = RegSet::new();
        match *self {
            Nop | Hlt | Store(..) | StoreI(..) | StoreB(..) | AluStore(..) | Cmp(..) | CmpI(..)
            | CmpMI(..) | Test(..) | TestI(..) | Jmp(_) | Jcc(..) | JmpMem(_) => {}
            MovRR(d, _)
            | MovRI(d, _)
            | Load(d, _)
            | LoadB(d, _)
            | LoadSxB(d, _)
            | Lea(d, _)
            | Alu(_, d, _)
            | AluI(_, d, _)
            | AluM(_, d, _)
            | Neg(d)
            | Not(d)
            | Mul(d, _)
            | MulI(d, _, _)
            | Div(d, _)
            | Rem(d, _)
            | Shl(d, _)
            | Shr(d, _)
            | Sar(d, _)
            | ShlR(d, _)
            | ShrR(d, _)
            | Cmov(_, d, _)
            | Set(_, d) => {
                s.insert(d);
            }
            Push(_) | PushI(_) | Call(_) | CallReg(_) | Ret => {
                s.insert(Reg::Rsp);
            }
            Pop(d) => {
                s.insert(d);
                s.insert(Reg::Rsp);
            }
            Leave => {
                s.insert(Reg::Rsp);
                s.insert(Reg::Rbp);
            }
            JmpReg(_) => {}
            XchgRR(a, b) => {
                s.insert(a);
                s.insert(b);
            }
            XchgRM(r, _) => {
                s.insert(r);
            }
        }
        s
    }

    /// Whether the instruction writes the condition flags.
    pub fn writes_flags(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Alu(..)
                | AluI(..)
                | AluM(..)
                | AluStore(..)
                | Neg(_)
                | Not(_)
                | Mul(..)
                | MulI(..)
                | Div(..)
                | Rem(..)
                | Shl(..)
                | Shr(..)
                | Sar(..)
                | ShlR(..)
                | ShrR(..)
                | Cmp(..)
                | CmpI(..)
                | CmpMI(..)
                | Test(..)
                | TestI(..)
        )
    }

    /// Whether the instruction reads the condition flags.
    pub fn reads_flags(&self) -> bool {
        use Inst::*;
        match self {
            Jcc(..) | Cmov(..) | Set(..) => true,
            Alu(op, _, _) | AluI(op, _, _) | AluM(op, _, _) | AluStore(op, _, _) => {
                op.reads_carry()
            }
            _ => false,
        }
    }

    /// Whether the instruction touches memory (other than the stack pushes
    /// and pops implied by control flow).
    pub fn touches_memory(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Load(..)
                | Store(..)
                | StoreI(..)
                | LoadB(..)
                | LoadSxB(..)
                | StoreB(..)
                | AluM(..)
                | AluStore(..)
                | CmpMI(..)
                | JmpMem(_)
                | XchgRM(..)
                | Push(_)
                | PushI(_)
                | Pop(_)
        )
    }

    /// Whether the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        use Inst::*;
        matches!(self, Jmp(_) | JmpReg(_) | JmpMem(_) | Jcc(..) | Ret | Hlt)
    }

    /// Whether the instruction is a call (direct or indirect).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call(_) | Inst::CallReg(_))
    }

    /// The memory operand of the instruction, if it has one.
    pub fn mem_operand(&self) -> Option<Mem> {
        use Inst::*;
        match *self {
            Load(_, m)
            | Store(m, _)
            | StoreI(m, _)
            | LoadB(_, m)
            | LoadSxB(_, m)
            | StoreB(m, _)
            | Lea(_, m)
            | AluM(_, _, m)
            | AluStore(_, m, _)
            | CmpMI(m, _)
            | JmpMem(m)
            | XchgRM(_, m) => Some(m),
            _ => None,
        }
    }

    /// Replaces the memory operand, if the instruction has one.
    pub fn with_mem_operand(self, new: Mem) -> Inst {
        use Inst::*;
        match self {
            Load(r, _) => Load(r, new),
            Store(_, r) => Store(new, r),
            StoreI(_, i) => StoreI(new, i),
            LoadB(r, _) => LoadB(r, new),
            LoadSxB(r, _) => LoadSxB(r, new),
            StoreB(_, r) => StoreB(new, r),
            Lea(r, _) => Lea(r, new),
            AluM(op, r, _) => AluM(op, r, new),
            AluStore(op, _, r) => AluStore(op, new, r),
            CmpMI(_, i) => CmpMI(new, i),
            JmpMem(_) => JmpMem(new),
            XchgRM(r, _) => XchgRM(r, new),
            other => other,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Nop => write!(f, "nop"),
            Hlt => write!(f, "hlt"),
            MovRR(d, s) => write!(f, "mov {d}, {s}"),
            MovRI(d, i) => write!(f, "mov {d}, {i:#x}"),
            Load(d, m) => write!(f, "mov {d}, qword {m}"),
            Store(m, s) => write!(f, "mov qword {m}, {s}"),
            StoreI(m, i) => write!(f, "mov qword {m}, {i:#x}"),
            LoadB(d, m) => write!(f, "movzx {d}, byte {m}"),
            LoadSxB(d, m) => write!(f, "movsx {d}, byte {m}"),
            StoreB(m, s) => write!(f, "mov byte {m}, {s}"),
            Lea(d, m) => write!(f, "lea {d}, {m}"),
            Push(r) => write!(f, "push {r}"),
            PushI(i) => write!(f, "push {i:#x}"),
            Pop(r) => write!(f, "pop {r}"),
            Alu(op, d, s) => write!(f, "{op} {d}, {s}"),
            AluI(op, d, i) => write!(f, "{op} {d}, {i:#x}"),
            AluM(op, d, m) => write!(f, "{op} {d}, qword {m}"),
            AluStore(op, m, s) => write!(f, "{op} qword {m}, {s}"),
            Neg(r) => write!(f, "neg {r}"),
            Not(r) => write!(f, "not {r}"),
            Mul(d, s) => write!(f, "imul {d}, {s}"),
            MulI(d, s, i) => write!(f, "imul {d}, {s}, {i:#x}"),
            Div(d, s) => write!(f, "div {d}, {s}"),
            Rem(d, s) => write!(f, "rem {d}, {s}"),
            Shl(r, i) => write!(f, "shl {r}, {i}"),
            Shr(r, i) => write!(f, "shr {r}, {i}"),
            Sar(r, i) => write!(f, "sar {r}, {i}"),
            ShlR(d, s) => write!(f, "shl {d}, {s}"),
            ShrR(d, s) => write!(f, "shr {d}, {s}"),
            Cmp(a, b) => write!(f, "cmp {a}, {b}"),
            CmpI(a, i) => write!(f, "cmp {a}, {i:#x}"),
            CmpMI(m, i) => write!(f, "cmp qword {m}, {i:#x}"),
            Test(a, b) => write!(f, "test {a}, {b}"),
            TestI(a, i) => write!(f, "test {a}, {i:#x}"),
            Cmov(c, d, s) => write!(f, "cmov{c} {d}, {s}"),
            Set(c, d) => write!(f, "set{c} {d}"),
            Jmp(o) => write!(f, "jmp {o:+#x}"),
            JmpReg(r) => write!(f, "jmp {r}"),
            JmpMem(m) => write!(f, "jmp qword {m}"),
            Jcc(c, o) => write!(f, "j{c} {o:+#x}"),
            Call(o) => write!(f, "call {o:+#x}"),
            CallReg(r) => write!(f, "call {r}"),
            Ret => write!(f, "ret"),
            Leave => write!(f, "leave"),
            XchgRR(a, b) => write!(f, "xchg {a}, {b}"),
            XchgRM(r, m) => write!(f, "xchg {r}, qword {m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_touch_stack_pointer() {
        assert!(Inst::Push(Reg::Rax).regs_read().contains(Reg::Rsp));
        assert!(Inst::Push(Reg::Rax).regs_written().contains(Reg::Rsp));
        assert!(Inst::Pop(Reg::Rdi).regs_written().contains(Reg::Rdi));
        assert!(Inst::Pop(Reg::Rdi).regs_written().contains(Reg::Rsp));
    }

    #[test]
    fn adc_reads_flags_add_does_not() {
        assert!(Inst::Alu(AluOp::Adc, Reg::Rcx, Reg::Rcx).reads_flags());
        assert!(!Inst::Alu(AluOp::Add, Reg::Rcx, Reg::Rcx).reads_flags());
        assert!(Inst::Alu(AluOp::Add, Reg::Rcx, Reg::Rcx).writes_flags());
    }

    #[test]
    fn terminators_classified() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jmp(4).is_terminator());
        assert!(Inst::Jcc(Cond::E, -8).is_terminator());
        assert!(!Inst::Call(0).is_terminator());
        assert!(!Inst::MovRR(Reg::Rax, Reg::Rbx).is_terminator());
    }

    #[test]
    fn mem_operand_roundtrip() {
        let m = Mem::base_disp(Reg::Rbp, -16);
        let i = Inst::Load(Reg::Rax, m);
        assert_eq!(i.mem_operand(), Some(m));
        let m2 = Mem::base_disp(Reg::R12, 8);
        assert_eq!(i.with_mem_operand(m2).mem_operand(), Some(m2));
        assert_eq!(Inst::Ret.mem_operand(), None);
    }

    #[test]
    fn display_is_readable() {
        let i = Inst::AluM(AluOp::Add, Reg::Rax, Mem::base_index(Reg::Rdi, Reg::Rcx, 8, 0x10));
        assert_eq!(format!("{i}"), "add rax, qword [rdi + rcx*8 + 0x10]");
    }

    #[test]
    fn mem_regs_collects_base_and_index() {
        let m = Mem::base_index(Reg::Rdi, Reg::Rsp, 1, 0);
        assert!(m.uses_sp());
        assert_eq!(m.regs().len(), 2);
        assert!(!Mem::abs(0x100).uses_sp());
    }
}
