//! A small two-pass assembler with labels and symbol references.
//!
//! The assembler is the interface between anything that produces RM64 code —
//! the MiniC code generator in `raindrop-synth`, the VM obfuscator, the
//! artificial-gadget synthesizer and the pivot stubs of the ROP rewriter —
//! and the binary image. It supports:
//!
//! * local labels for intra-function branches (`jmp`/`jcc` with relative
//!   displacements resolved at assembly time);
//! * symbolic references to functions and data (`call sym`,
//!   `mov reg, &sym`, absolute loads/stores of a global), resolved by the
//!   [`ImageBuilder`](crate::image::ImageBuilder) at link time.

use crate::flags::Cond;
use crate::inst::{Inst, Mem};
use crate::reg::Reg;
use crate::{encode, DecodeError};
use std::collections::HashMap;
use std::fmt;

/// A local, intra-function branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(usize);

/// One assembler item: either a concrete instruction or something whose
/// encoding depends on label/symbol resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmItem {
    /// A concrete instruction.
    Inst(Inst),
    /// `jmp label`
    JmpLabel(Label),
    /// `j<cc> label`
    JccLabel(Cond, Label),
    /// `call symbol` (direct, relative call to a named function).
    CallSym(String),
    /// `mov reg, &symbol` — loads the absolute address of a symbol.
    MovSymAddr(Reg, String),
    /// `push &symbol` — pushes the absolute address of a symbol (64-bit).
    ///
    /// `push imm32` would truncate the address, so the item lowers to
    /// `mov scratch, &sym; push scratch` with the scratch register supplied
    /// at construction.
    PushSymAddr(Reg, String),
    /// `lea reg, [symbol + disp]` — absolute address of a global plus offset.
    LeaSym(Reg, String, i32),
}

/// Error produced during assembly or linking.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    RebindLabel(Label),
    /// A symbol could not be resolved by the image builder.
    UnknownSymbol(String),
    /// A relative displacement does not fit in 32 bits.
    DisplacementTooLarge {
        /// Address the displacement is taken from.
        from: u64,
        /// Target address.
        to: u64,
    },
    /// A symbol address does not fit in the 32-bit absolute addressing form.
    SymbolOutOfRange(String, u64),
    /// Re-decoding the produced bytes failed (internal consistency check).
    Encoding(DecodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {:?} referenced but never bound", l),
            AsmError::RebindLabel(l) => write!(f, "label {:?} bound twice", l),
            AsmError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            AsmError::DisplacementTooLarge { from, to } => {
                write!(f, "displacement from {from:#x} to {to:#x} does not fit in 32 bits")
            }
            AsmError::SymbolOutOfRange(s, a) => {
                write!(f, "symbol `{s}` at {a:#x} outside 32-bit absolute range")
            }
            AsmError::Encoding(e) => write!(f, "encoding self-check failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Resolves symbol names to absolute addresses at link time.
pub trait SymbolResolver {
    /// Returns the absolute address of `name`, or `None` if unknown.
    fn resolve(&self, name: &str) -> Option<u64>;
}

impl SymbolResolver for HashMap<String, u64> {
    fn resolve(&self, name: &str) -> Option<u64> {
        self.get(name).copied()
    }
}

impl SymbolResolver for std::collections::BTreeMap<String, u64> {
    fn resolve(&self, name: &str) -> Option<u64> {
        self.get(name).copied()
    }
}

/// Builds a function body instruction by instruction.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<AsmItem>,
    labels: Vec<Option<usize>>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound; binding twice is always a
    /// caller bug.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label {label:?} bound twice");
        self.labels[label.0] = Some(self.items.len());
    }

    /// Appends a concrete instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.items.push(AsmItem::Inst(inst));
        self
    }

    /// Appends several concrete instructions.
    pub fn insts<I: IntoIterator<Item = Inst>>(&mut self, insts: I) -> &mut Self {
        for i in insts {
            self.inst(i);
        }
        self
    }

    /// Appends `jmp label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.items.push(AsmItem::JmpLabel(label));
        self
    }

    /// Appends `j<cc> label`.
    pub fn jcc(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.items.push(AsmItem::JccLabel(cond, label));
        self
    }

    /// Appends `call symbol`.
    pub fn call_sym(&mut self, name: impl Into<String>) -> &mut Self {
        self.items.push(AsmItem::CallSym(name.into()));
        self
    }

    /// Appends `mov reg, &symbol`.
    pub fn mov_sym_addr(&mut self, reg: Reg, name: impl Into<String>) -> &mut Self {
        self.items.push(AsmItem::MovSymAddr(reg, name.into()));
        self
    }

    /// Appends a push of a symbol's absolute address through `scratch`.
    pub fn push_sym_addr(&mut self, scratch: Reg, name: impl Into<String>) -> &mut Self {
        self.items.push(AsmItem::PushSymAddr(scratch, name.into()));
        self
    }

    /// Appends `lea reg, [&symbol + disp]`.
    pub fn lea_sym(&mut self, reg: Reg, name: impl Into<String>, disp: i32) -> &mut Self {
        self.items.push(AsmItem::LeaSym(reg, name.into(), disp));
        self
    }

    /// Loads the 64-bit global at `&symbol + disp` into `reg`
    /// (`mov reg, qword [sym + disp]` using absolute addressing).
    pub fn load_sym(&mut self, reg: Reg, name: impl Into<String>, disp: i32) -> &mut Self {
        // Encoded through MovSymAddr at link time would waste a register, so
        // record it as a LeaSym-like item: we rely on symbols living in the
        // low 2 GiB and use absolute memory operands. The resolution happens
        // in `assemble`, which rewrites the displacement.
        self.items.push(AsmItem::LeaSym(reg, name.into(), disp));
        self.items.push(AsmItem::Inst(Inst::Load(reg, Mem::base(reg))));
        self
    }

    /// Number of items appended so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items appended so far.
    pub fn items(&self) -> &[AsmItem] {
        &self.items
    }

    fn item_len(item: &AsmItem) -> usize {
        match item {
            AsmItem::Inst(i) => encode::encoded_len(i),
            AsmItem::JmpLabel(_) => encode::encoded_len(&Inst::Jmp(0)),
            AsmItem::JccLabel(c, _) => encode::encoded_len(&Inst::Jcc(*c, 0)),
            AsmItem::CallSym(_) => encode::encoded_len(&Inst::Call(0)),
            AsmItem::MovSymAddr(r, _) => encode::encoded_len(&Inst::MovRI(*r, 0)),
            AsmItem::PushSymAddr(r, _) => {
                encode::encoded_len(&Inst::MovRI(*r, 0)) + encode::encoded_len(&Inst::Push(*r))
            }
            AsmItem::LeaSym(r, _, _) => encode::encoded_len(&Inst::MovRI(*r, 0)),
        }
    }

    /// Size in bytes of the assembled output (independent of resolution).
    pub fn byte_len(&self) -> usize {
        self.items.iter().map(Self::item_len).sum()
    }

    /// Assembles the function at absolute address `base`, resolving symbols
    /// through `resolver`.
    ///
    /// # Errors
    ///
    /// Fails on unbound labels, unknown symbols or out-of-range
    /// displacements.
    pub fn assemble(&self, base: u64, resolver: &dyn SymbolResolver) -> Result<Vec<u8>, AsmError> {
        // Pass 1: assign an offset to every item and every label.
        let mut offsets = Vec::with_capacity(self.items.len() + 1);
        let mut off = 0usize;
        for item in &self.items {
            offsets.push(off);
            off += Self::item_len(item);
        }
        offsets.push(off);

        let label_off = |l: Label| -> Result<usize, AsmError> {
            let idx = self.labels[l.0].ok_or(AsmError::UnboundLabel(l))?;
            Ok(offsets[idx])
        };

        // Pass 2: emit.
        let mut out = Vec::with_capacity(off);
        for (idx, item) in self.items.iter().enumerate() {
            let here = offsets[idx];
            match item {
                AsmItem::Inst(i) => encode::encode_into(i, &mut out),
                AsmItem::JmpLabel(l) => {
                    let target = label_off(*l)?;
                    let next = here + Self::item_len(item);
                    let rel = target as i64 - next as i64;
                    let rel = i32::try_from(rel).map_err(|_| AsmError::DisplacementTooLarge {
                        from: base + next as u64,
                        to: base + target as u64,
                    })?;
                    encode::encode_into(&Inst::Jmp(rel), &mut out);
                }
                AsmItem::JccLabel(c, l) => {
                    let target = label_off(*l)?;
                    let next = here + Self::item_len(item);
                    let rel = target as i64 - next as i64;
                    let rel = i32::try_from(rel).map_err(|_| AsmError::DisplacementTooLarge {
                        from: base + next as u64,
                        to: base + target as u64,
                    })?;
                    encode::encode_into(&Inst::Jcc(*c, rel), &mut out);
                }
                AsmItem::CallSym(name) => {
                    let target = resolver
                        .resolve(name)
                        .ok_or_else(|| AsmError::UnknownSymbol(name.clone()))?;
                    let next = base + (here + Self::item_len(item)) as u64;
                    let rel = target as i64 - next as i64;
                    let rel = i32::try_from(rel)
                        .map_err(|_| AsmError::DisplacementTooLarge { from: next, to: target })?;
                    encode::encode_into(&Inst::Call(rel), &mut out);
                }
                AsmItem::MovSymAddr(r, name) => {
                    let target = resolver
                        .resolve(name)
                        .ok_or_else(|| AsmError::UnknownSymbol(name.clone()))?;
                    encode::encode_into(&Inst::MovRI(*r, target as i64), &mut out);
                }
                AsmItem::PushSymAddr(r, name) => {
                    let target = resolver
                        .resolve(name)
                        .ok_or_else(|| AsmError::UnknownSymbol(name.clone()))?;
                    encode::encode_into(&Inst::MovRI(*r, target as i64), &mut out);
                    encode::encode_into(&Inst::Push(*r), &mut out);
                }
                AsmItem::LeaSym(r, name, disp) => {
                    let target = resolver
                        .resolve(name)
                        .ok_or_else(|| AsmError::UnknownSymbol(name.clone()))?;
                    let addr = (target as i64).wrapping_add(*disp as i64);
                    encode::encode_into(&Inst::MovRI(*r, addr), &mut out);
                }
            }
        }
        debug_assert_eq!(out.len(), off);
        Ok(out)
    }
}

/// Convenience resolver with no symbols, for purely local code.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSymbols;

impl SymbolResolver for NoSymbols {
    fn resolve(&self, _name: &str) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AluOp;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        let top = a.new_label();
        let done = a.new_label();
        a.bind(top);
        a.inst(Inst::AluI(AluOp::Sub, Reg::Rdi, 1));
        a.jcc(Cond::E, done);
        a.jmp(top);
        a.bind(done);
        a.inst(Inst::Ret);
        let bytes = a.assemble(0x1000, &NoSymbols).unwrap();
        let decoded = encode::decode_all(&bytes).unwrap();
        // sub, jcc, jmp, ret
        assert_eq!(decoded.len(), 4);
        match decoded[2].1 {
            Inst::Jmp(rel) => {
                let next = decoded[2].0 + encode::encoded_len(&Inst::Jmp(0));
                assert_eq!(next as i64 + rel as i64, 0, "jmp goes back to offset 0");
            }
            other => panic!("expected jmp, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.jmp(l);
        assert!(matches!(a.assemble(0, &NoSymbols), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_label_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn call_symbol_is_relative() {
        let mut syms = HashMap::new();
        syms.insert("callee".to_string(), 0x2000u64);
        let mut a = Assembler::new();
        a.call_sym("callee");
        a.inst(Inst::Ret);
        let bytes = a.assemble(0x1000, &syms).unwrap();
        let decoded = encode::decode_all(&bytes).unwrap();
        match decoded[0].1 {
            Inst::Call(rel) => {
                let next = 0x1000 + encode::encoded_len(&Inst::Call(0)) as u64;
                assert_eq!(next.wrapping_add(rel as i64 as u64), 0x2000);
            }
            other => panic!("expected call, got {other}"),
        }
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let mut a = Assembler::new();
        a.call_sym("nope");
        assert!(matches!(a.assemble(0, &NoSymbols), Err(AsmError::UnknownSymbol(_))));
    }

    #[test]
    fn byte_len_matches_assembled_length() {
        let mut syms = HashMap::new();
        syms.insert("g".to_string(), 0x4000u64);
        let mut a = Assembler::new();
        let l = a.new_label();
        a.mov_sym_addr(Reg::Rax, "g");
        a.push_sym_addr(Reg::R11, "g");
        a.lea_sym(Reg::Rbx, "g", 8);
        a.load_sym(Reg::Rcx, "g", 0);
        a.jmp(l);
        a.bind(l);
        a.inst(Inst::Ret);
        let bytes = a.assemble(0x1000, &syms).unwrap();
        assert_eq!(bytes.len(), a.byte_len());
    }
}
