//! # raindrop-machine
//!
//! The machine substrate of the *raindrop* reproduction ("Hiding in the
//! Particles: When Return-Oriented Programming Meets Program Obfuscation",
//! DSN 2021): a small x86-64-shaped ISA called **RM64**, with everything the
//! ROP obfuscator and its attackers need from a real machine:
//!
//! * a register file with a stack pointer that doubles as the ROP virtual
//!   program counter ([`Reg`], [`RegSet`]);
//! * condition flags with x86-64 semantics for the `neg`/`adc` flag-leak
//!   idiom ([`Flags`], [`Cond`]);
//! * a variable-length byte encoding where `ret` is a single byte and any
//!   offset can be speculatively decoded ([`mod@encode`], [`decode`]);
//! * a two-pass [`Assembler`] and linkable [`Image`]s with `.text`/`.data`
//!   sections and a symbol table;
//! * an [`Emulator`] with cycle accounting, tracing and snapshots.
//!
//! # Example
//!
//! ```
//! use raindrop_machine::{Assembler, Emulator, ImageBuilder, Inst, Reg, AluOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! asm.inst(Inst::MovRR(Reg::Rax, Reg::Rdi))
//!     .inst(Inst::Alu(AluOp::Add, Reg::Rax, Reg::Rsi))
//!     .inst(Inst::Ret);
//! let mut builder = ImageBuilder::new();
//! builder.add_function("add", asm);
//! let image = builder.build()?;
//! let mut emu = Emulator::new(&image);
//! assert_eq!(emu.call_named(&image, "add", &[2, 40])?, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod emu;
pub mod encode;
pub mod flags;
mod icache;
pub mod image;
pub mod inst;
pub mod mem;
pub mod reg;
pub mod trace;

pub use asm::{AsmError, AsmItem, Assembler, Label, NoSymbols, SymbolResolver};
pub use emu::{Cpu, EmuError, Emulator, ExecStats, RunExit, Snapshot, DEFAULT_BUDGET};
pub use encode::{decode, decode_all, encode, encode_all, encoded_len, DecodeError, OP_RET};
pub use flags::{Cond, Flags};
pub use image::{
    FuncSym, Image, ImageBuilder, ImageError, DATA_BASE, HEAP_BASE, HEAP_SIZE, RETURN_SENTINEL,
    STACK_SIZE, STACK_TOP, TEXT_BASE,
};
pub use inst::{AluOp, Inst, Mem};
pub use mem::{page_key, page_offset, Memory, PAGE_SHIFT, PAGE_SIZE};
pub use reg::{Reg, RegSet};
pub use trace::{MemAccess, Trace, TraceEntry};
