//! Execution traces.
//!
//! A [`Trace`] records what the emulator executed: instruction addresses,
//! stack-pointer evolution, memory accesses and register writes. Traces are
//! the raw material of the dynamic attackers in `raindrop-attacks`
//! (taint-driven simplification consumes register/memory data flows, the
//! ROPMEMU-style explorer looks for variable RSP additions and flag leaks).

use crate::flags::Flags;
use crate::inst::Inst;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// One memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Absolute address of the access.
    pub addr: u64,
    /// Value read or written.
    pub value: u64,
    /// Access size in bytes (1 or 8).
    pub size: u8,
    /// Whether the access was a write.
    pub is_write: bool,
}

/// One executed instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Position in the trace (0-based).
    pub index: u64,
    /// Address the instruction was fetched from.
    pub addr: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Stack pointer before execution.
    pub rsp_before: u64,
    /// Stack pointer after execution.
    pub rsp_after: u64,
    /// Flags after execution.
    pub flags_after: Flags,
    /// Register writes performed by the instruction (destination, new value).
    pub reg_writes: Vec<(Reg, u64)>,
    /// Memory accesses performed by the instruction.
    pub mem: Vec<MemAccess>,
    /// For conditional branches: whether the branch was taken.
    pub branch_taken: Option<bool>,
}

impl TraceEntry {
    /// Net stack-pointer change caused by the instruction.
    pub fn rsp_delta(&self) -> i64 {
        self.rsp_after.wrapping_sub(self.rsp_before) as i64
    }

    /// Whether the instruction wrote the given register.
    pub fn writes_reg(&self, r: Reg) -> bool {
        self.reg_writes.iter().any(|(w, _)| *w == r)
    }
}

/// A recorded execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Executed instructions in order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Number of executed instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// Indices of entries executing `ret` (the ROP dispatching points).
    pub fn ret_indices(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.inst, Inst::Ret))
            .map(|(i, _)| i)
            .collect()
    }

    /// Distinct instruction addresses touched by the trace.
    pub fn distinct_addresses(&self) -> std::collections::BTreeSet<u64> {
        self.entries.iter().map(|e| e.addr).collect()
    }

    /// Entries whose instruction added a *register* (i.e. run-time variable)
    /// quantity to the stack pointer — the branching fingerprint ROP-aware
    /// tools look for (§III-B2).
    pub fn variable_rsp_updates(&self) -> Vec<&TraceEntry> {
        use crate::inst::AluOp;
        self.entries
            .iter()
            .filter(|e| {
                matches!(
                    e.inst,
                    Inst::Alu(AluOp::Add | AluOp::Sub, Reg::Rsp, _)
                        | Inst::AluM(AluOp::Add | AluOp::Sub, Reg::Rsp, _)
                )
            })
            .collect()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AluOp;

    fn entry(idx: u64, inst: Inst, rsp_before: u64, rsp_after: u64) -> TraceEntry {
        TraceEntry {
            index: idx,
            addr: 0x1000 + idx * 4,
            inst,
            rsp_before,
            rsp_after,
            flags_after: Flags::cleared(),
            reg_writes: vec![],
            mem: vec![],
            branch_taken: None,
        }
    }

    #[test]
    fn ret_indices_and_variable_rsp_updates() {
        let t = Trace {
            entries: vec![
                entry(0, Inst::Pop(Reg::Rsi), 0x100, 0x108),
                entry(1, Inst::Ret, 0x108, 0x110),
                entry(2, Inst::Alu(AluOp::Add, Reg::Rsp, Reg::Rsi), 0x110, 0x128),
                entry(3, Inst::Ret, 0x128, 0x130),
            ],
        };
        assert_eq!(t.ret_indices(), vec![1, 3]);
        assert_eq!(t.variable_rsp_updates().len(), 1);
        assert_eq!(t.entries[2].rsp_delta(), 0x18);
    }

    #[test]
    fn distinct_addresses_deduplicates() {
        let mut t = Trace::new();
        t.entries.push(entry(0, Inst::Nop, 0, 0));
        t.entries.push(entry(0, Inst::Nop, 0, 0));
        assert_eq!(t.distinct_addresses().len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }
}
