//! Predecoded instruction cache.
//!
//! The emulator decodes each fetched instruction **once** per page
//! generation: decoded instructions are stored in per-page run tables (a
//! flat `offset → decoded-instruction` map plus the backing vector of
//! decoded instructions), tagged with the [`Memory`](crate::mem::Memory)
//! write generation of the page they were decoded from. A write into a
//! cached page bumps that generation and the next fetch from the page
//! re-decodes — so self-modifying text is handled exactly, while the
//! dominant case (immutable text pages driven by `ret`-dispatched ROP
//! chains) hits the cache ~100% of the time.
//!
//! Instructions whose encoding straddles a page boundary are never cached:
//! their bytes span two pages and a single generation tag could not cover
//! both. They fall back to the decode-per-fetch slow path, which is exact.
//!
//! Like [`Memory`](crate::mem::Memory), the cache keeps its per-page tables
//! in a flat `Vec` with a `HashMap` index and a one-entry last-page fast
//! path, so a fetch that stays on the same page as the previous one touches
//! no hash table at all.

use crate::inst::Inst;
use crate::mem::PAGE_SIZE;
use std::collections::HashMap;

/// A decoded instruction and its encoded length in bytes.
pub(crate) type Decoded = (Inst, u8);

/// Slot sentinel: offset not decoded yet.
const NO_SLOT: u16 = u16::MAX;

#[derive(Debug, Clone)]
struct PageRuns {
    /// Generation of the memory page these runs were decoded from.
    gen: u64,
    /// Byte offset → index into `insts`, or [`NO_SLOT`].
    slots: Box<[u16; PAGE_SIZE]>,
    /// Decoded instructions, in first-decode order.
    insts: Vec<Decoded>,
}

impl PageRuns {
    fn new(gen: u64) -> PageRuns {
        PageRuns { gen, slots: Box::new([NO_SLOT; PAGE_SIZE]), insts: Vec::new() }
    }

    fn clear(&mut self, gen: u64) {
        self.slots.fill(NO_SLOT);
        self.insts.clear();
        self.gen = gen;
    }
}

/// The predecoded instruction cache. One per [`Emulator`](crate::Emulator).
#[derive(Debug, Clone)]
pub(crate) struct ICache {
    pages: Vec<PageRuns>,
    index: HashMap<u64, u32>,
    /// Last page resolved: `(page key, slot)`; `u64::MAX` when empty.
    last: (u64, u32),
}

impl Default for ICache {
    fn default() -> Self {
        ICache { pages: Vec::new(), index: HashMap::new(), last: (u64::MAX, 0) }
    }
}

impl ICache {
    /// Resolves (and revalidates) the run table for page `key` at memory
    /// generation `gen`, creating it on first use.
    #[inline]
    fn page_slot(&mut self, key: u64, gen: u64) -> usize {
        let slot = if self.last.0 == key {
            self.last.1 as usize
        } else {
            match self.index.get(&key) {
                Some(&s) => {
                    self.last = (key, s);
                    s as usize
                }
                None => {
                    let s = self.pages.len();
                    assert!(s < u32::MAX as usize, "icache page count overflow");
                    self.pages.push(PageRuns::new(gen));
                    self.index.insert(key, s as u32);
                    self.last = (key, s as u32);
                    return s;
                }
            }
        };
        let runs = &mut self.pages[slot];
        if runs.gen != gen {
            runs.clear(gen);
        }
        slot
    }

    /// Looks up the decoded instruction at (`key`, `off`) if it was decoded
    /// at memory generation `gen`.
    #[inline]
    pub(crate) fn lookup(&mut self, key: u64, off: usize, gen: u64) -> Option<Decoded> {
        let slot = self.page_slot(key, gen);
        let runs = &self.pages[slot];
        let idx = runs.slots[off];
        if idx == NO_SLOT {
            return None;
        }
        Some(runs.insts[idx as usize])
    }

    /// Records the decoded instruction at (`key`, `off`) for memory
    /// generation `gen`. The caller must ensure the instruction's bytes lie
    /// entirely within the page.
    #[inline]
    pub(crate) fn insert(&mut self, key: u64, off: usize, gen: u64, inst: Inst, len: u8) {
        debug_assert!(off + len as usize <= PAGE_SIZE, "straddling instructions are not cached");
        let slot = self.page_slot(key, gen);
        let runs = &mut self.pages[slot];
        if runs.insts.len() >= NO_SLOT as usize {
            // A page can hold at most PAGE_SIZE decode starts, which is
            // below NO_SLOT; this is unreachable but cheap to guard.
            return;
        }
        runs.slots[off] = runs.insts.len() as u16;
        runs.insts.push((inst, len));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn lookup_miss_then_hit_then_invalidation() {
        let mut ic = ICache::default();
        assert_eq!(ic.lookup(3, 5, 1), None);
        ic.insert(3, 5, 1, Inst::Ret, 1);
        assert_eq!(ic.lookup(3, 5, 1), Some((Inst::Ret, 1)));
        // Same page, newer generation: the run table is cleared.
        assert_eq!(ic.lookup(3, 5, 2), None);
        // And the old generation is gone too (monotonic tags).
        assert_eq!(ic.lookup(3, 5, 1), None);
    }

    #[test]
    fn pages_are_independent() {
        let mut ic = ICache::default();
        ic.insert(1, 0, 1, Inst::Ret, 1);
        ic.insert(2, 0, 7, Inst::Nop, 1);
        assert_eq!(ic.lookup(1, 0, 1), Some((Inst::Ret, 1)));
        assert_eq!(ic.lookup(2, 0, 7), Some((Inst::Nop, 1)));
        // Invalidating page 2 leaves page 1 alone.
        assert_eq!(ic.lookup(2, 0, 8), None);
        assert_eq!(ic.lookup(1, 0, 1), Some((Inst::Ret, 1)));
    }

    #[test]
    fn distinct_offsets_coexist_like_unaligned_gadget_decodes() {
        let mut ic = ICache::default();
        ic.insert(9, 100, 1, Inst::Pop(Reg::Rax), 2);
        ic.insert(9, 101, 1, Inst::Ret, 1);
        assert_eq!(ic.lookup(9, 100, 1), Some((Inst::Pop(Reg::Rax), 2)));
        assert_eq!(ic.lookup(9, 101, 1), Some((Inst::Ret, 1)));
    }
}
