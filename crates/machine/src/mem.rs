//! Sparse byte-addressable guest memory.
//!
//! Memory is organized in 4 KiB pages allocated on first touch, which keeps
//! the emulator cheap even though the guest address space spans text, data,
//! heap, the native stack and the separate region ROP chains live in.
//!
//! The layout is built for the emulator's hot path: resident pages live in a
//! flat `Vec` (stable slots — pages are never moved or evicted, only zeroed
//! by [`Memory::restore_from`]) with a `HashMap` index from page key to slot,
//! and two one-entry TLBs — one for the data path, one for instruction fetch
//! — short-circuit the index probe for the common same-page-as-last-time
//! case. Word and bulk accesses operate on page slices with chunked copies
//! instead of byte-at-a-time probes.
//!
//! Every page carries a **generation counter**, bumped on each write that
//! touches it. The emulator's predecoded instruction cache tags its decoded
//! runs with the generation of the page they were decoded from, so any store
//! into a cached page (self-modifying text, a restored snapshot) invalidates
//! exactly the runs that could have changed.

use std::cell::Cell;
use std::collections::HashMap;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

const _: () = assert!(PAGE_SIZE == 1 << PAGE_SHIFT);

/// The page key containing `addr` (its virtual page number).
#[inline]
pub fn page_key(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// The byte offset of `addr` within its page.
#[inline]
pub fn page_offset(addr: u64) -> usize {
    (addr & (PAGE_SIZE as u64 - 1)) as usize
}

/// TLB sentinel: no page key is ever `u64::MAX` (keys are `addr >> 12`).
const NO_PAGE: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Page {
    /// Write generation: starts at 1 when the page is first touched and is
    /// bumped by every write operation that reaches the page.
    gen: u64,
    bytes: Box<[u8; PAGE_SIZE]>,
}

/// Sparse, paged guest memory.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Resident pages; slots are stable for the lifetime of the memory.
    pages: Vec<Page>,
    /// Page key → slot in `pages`.
    index: HashMap<u64, u32>,
    /// Last page resolved by the data path: `(page key, slot)`.
    data_tlb: Cell<(u64, u32)>,
    /// Last page resolved by instruction fetch: `(page key, slot)`.
    fetch_tlb: Cell<(u64, u32)>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            pages: Vec::new(),
            index: HashMap::new(),
            data_tlb: Cell::new((NO_PAGE, 0)),
            fetch_tlb: Cell::new((NO_PAGE, 0)),
        }
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Resolves `key` to a slot through a TLB, falling back to the index.
    #[inline]
    fn slot_via(&self, key: u64, tlb: &Cell<(u64, u32)>) -> Option<usize> {
        let (k, s) = tlb.get();
        if k == key {
            return Some(s as usize);
        }
        let s = *self.index.get(&key)?;
        tlb.set((key, s));
        Some(s as usize)
    }

    /// Resolves `addr`'s page for reading through the data TLB.
    #[inline]
    fn page(&self, addr: u64) -> Option<&Page> {
        let slot = self.slot_via(page_key(addr), &self.data_tlb)?;
        Some(&self.pages[slot])
    }

    /// Resolves `addr`'s page for writing, allocating it on first touch, and
    /// bumps its generation.
    #[inline]
    fn page_for_write(&mut self, addr: u64) -> &mut Page {
        let key = page_key(addr);
        let slot = match self.slot_via(key, &self.data_tlb) {
            Some(s) => s,
            None => {
                let s = self.pages.len();
                assert!(s < u32::MAX as usize, "guest memory page count overflow");
                self.pages.push(Page { gen: 0, bytes: Box::new([0u8; PAGE_SIZE]) });
                self.index.insert(key, s as u32);
                self.data_tlb.set((key, s as u32));
                s
            }
        };
        let p = &mut self.pages[slot];
        p.gen += 1;
        p
    }

    /// Reads one byte. Untouched memory reads as zero.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p.bytes[page_offset(addr)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = page_offset(addr);
        self.page_for_write(addr).bytes[off] = value;
    }

    /// Reads a little-endian 64-bit word (may cross a page boundary).
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = page_offset(addr);
        if off <= PAGE_SIZE - 8 {
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&p.bytes[off..off + 8]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut buf = [0u8; 8];
            self.read_bytes(addr, &mut buf);
            u64::from_le_bytes(buf)
        }
    }

    /// Writes a little-endian 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let off = page_offset(addr);
        if off <= PAGE_SIZE - 8 {
            let p = self.page_for_write(addr);
            p.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_bytes(addr, &value.to_le_bytes());
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`, one chunked copy per page.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut cur = addr;
        let mut done = 0usize;
        while done < buf.len() {
            let off = page_offset(cur);
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            let dst = &mut buf[done..done + chunk];
            match self.page(cur) {
                Some(p) => dst.copy_from_slice(&p.bytes[off..off + chunk]),
                None => dst.fill(0),
            }
            done += chunk;
            cur = cur.wrapping_add(chunk as u64);
        }
    }

    /// Writes all of `bytes` starting at `addr`, one chunked copy per page.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut cur = addr;
        let mut done = 0usize;
        while done < bytes.len() {
            let off = page_offset(cur);
            let chunk = (PAGE_SIZE - off).min(bytes.len() - done);
            let p = self.page_for_write(cur);
            p.bytes[off..off + chunk].copy_from_slice(&bytes[done..done + chunk]);
            done += chunk;
            cur = cur.wrapping_add(chunk as u64);
        }
    }

    /// The write generation of the page containing `addr`: 0 when the page
    /// has never been touched, otherwise ≥ 1 and bumped by every write that
    /// reaches the page. Consumers caching derived data (the emulator's
    /// instruction cache) tag entries with this value and revalidate by
    /// equality.
    #[inline]
    pub fn page_gen(&self, addr: u64) -> u64 {
        match self.page(addr) {
            Some(p) => p.gen,
            None => 0,
        }
    }

    /// Instruction-fetch view of `addr`'s page, resolved through the
    /// dedicated fetch TLB so data traffic does not evict the fetch entry:
    /// returns the page's generation and its full byte array (`None` when
    /// the page is untouched, in which case the generation is 0).
    #[inline]
    pub fn fetch_page(&self, addr: u64) -> (u64, Option<&[u8; PAGE_SIZE]>) {
        match self.slot_via(page_key(addr), &self.fetch_tlb) {
            Some(slot) => {
                let p = &self.pages[slot];
                (p.gen, Some(&p.bytes))
            }
            None => (0, None),
        }
    }

    /// Reverts this memory to the contents of `other`, reusing resident page
    /// allocations: pages whose bytes already match are left untouched (and
    /// keep their generation, so caches keyed on it stay valid), pages that
    /// differ are overwritten in place with a generation bump, and pages
    /// resident here but not in `other` are zeroed. Nothing is deallocated.
    pub fn restore_from(&mut self, other: &Memory) {
        for (key, &slot) in &self.index {
            if !other.index.contains_key(key) {
                let p = &mut self.pages[slot as usize];
                if p.bytes.iter().any(|b| *b != 0) {
                    p.bytes.fill(0);
                    p.gen += 1;
                }
            }
        }
        for (key, &oslot) in &other.index {
            let op = &other.pages[oslot as usize];
            match self.index.get(key) {
                Some(&slot) => {
                    let p = &mut self.pages[slot as usize];
                    if p.bytes[..] != op.bytes[..] {
                        p.bytes.copy_from_slice(&op.bytes[..]);
                        p.gen += 1;
                    }
                }
                None => {
                    let s = self.pages.len();
                    assert!(s < u32::MAX as usize, "guest memory page count overflow");
                    self.pages.push(op.clone());
                    self.index.insert(*key, s as u32);
                }
            }
        }
    }

    /// Number of pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident memory in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x1234), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_roundtrip_within_page() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x1000), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0x1000), 0x88, "little endian");
    }

    #[test]
    fn u64_roundtrip_across_page_boundary() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u64 - 3;
        m.write_u64(addr, u64::MAX - 1);
        assert_eq!(m.read_u64(addr), u64::MAX - 1);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x8000 - 100, &data);
        let mut back = vec![0u8; 256];
        m.read_bytes(0x8000 - 100, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn generations_start_at_one_and_count_writes() {
        let mut m = Memory::new();
        assert_eq!(m.page_gen(0x5000), 0, "untouched page");
        m.write_u8(0x5000, 1);
        assert_eq!(m.page_gen(0x5000), 1);
        m.write_u64(0x5100, 2);
        assert_eq!(m.page_gen(0x5000), 2, "same page");
        m.write_u8(0x6000, 3);
        assert_eq!(m.page_gen(0x5000), 2, "other page untouched");
        assert_eq!(m.page_gen(0x6000), 1);
    }

    #[test]
    fn fetch_page_sees_data_writes() {
        let mut m = Memory::new();
        let (gen, page) = m.fetch_page(0x7000);
        assert_eq!(gen, 0);
        assert!(page.is_none());
        m.write_u8(0x7004, 0xAB);
        let (gen, page) = m.fetch_page(0x7000);
        assert_eq!(gen, 1);
        assert_eq!(page.unwrap()[4], 0xAB);
    }

    #[test]
    fn restore_reuses_pages_and_preserves_matching_generations() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 7); // gen 1
        let snap = m.clone();
        let gen_at_snap = m.page_gen(0x1000);

        m.write_u64(0x1000, 8); // diverge
        m.write_u64(0x9000, 9); // page not in snapshot
        m.restore_from(&snap);

        assert_eq!(m.read_u64(0x1000), 7);
        assert_eq!(m.read_u64(0x9000), 0, "post-snapshot page zeroed");
        assert!(m.page_gen(0x1000) > gen_at_snap, "diverged page re-tagged");
        assert_eq!(m.resident_pages(), 2, "allocations reused, not dropped");

        // A second, no-op restore must not bump any generation.
        let g1 = m.page_gen(0x1000);
        let g9 = m.page_gen(0x9000);
        m.restore_from(&snap);
        assert_eq!(m.page_gen(0x1000), g1);
        assert_eq!(m.page_gen(0x9000), g9);
    }
}
