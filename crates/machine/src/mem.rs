//! Sparse byte-addressable guest memory.
//!
//! Memory is organized in 4 KiB pages allocated on first touch, which keeps
//! the emulator cheap even though the guest address space spans text, data,
//! heap, the native stack and the separate region ROP chains live in.

use std::collections::HashMap;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Sparse, paged guest memory.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        let key = addr / PAGE_SIZE as u64;
        self.pages.entry(key).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte. Untouched memory reads as zero.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let key = addr / PAGE_SIZE as u64;
        match self.pages.get(&key) {
            Some(p) => p[(addr % PAGE_SIZE as u64) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr % PAGE_SIZE as u64) as usize;
        self.page_mut(addr)[off] = value;
    }

    /// Reads a little-endian 64-bit word (may cross a page boundary).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
    }

    /// Writes all of `bytes` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Number of pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident memory in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x1234), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_roundtrip_within_page() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x1000), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0x1000), 0x88, "little endian");
    }

    #[test]
    fn u64_roundtrip_across_page_boundary() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u64 - 3;
        m.write_u64(addr, u64::MAX - 1);
        assert_eq!(m.read_u64(addr), u64::MAX - 1);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x8000 - 100, &data);
        let mut back = vec![0u8; 256];
        m.read_bytes(0x8000 - 100, &mut back);
        assert_eq!(back, data);
    }
}
