//! Store round-trip guarantees: cache hits are byte-identical to fresh
//! pipeline runs across ROP, multi-layer VM, and cross-layer
//! configurations; any corruption or truncation demotes to a miss.

use raindrop::pipeline::ObfConfig;
use raindrop::RopConfig;
use raindrop_machine::Image;
use raindrop_obfvm::VmConfig;
use raindrop_server::{ArtifactKey, ArtifactStore, Migration, StoreConfig};
use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh, unique store directory per test invocation.
fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "raindrop-store-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// f(x) = (x ^ 0x5A) * 3 + 7.
fn sample_program() -> Program {
    Program::new().with_function(Function {
        name: "f".into(),
        params: 1,
        locals: 1,
        body: vec![
            Stmt::Assign(0, Expr::bin(BinOp::Xor, Expr::Arg(0), Expr::c(0x5A))),
            Stmt::Return(Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::Var(0), Expr::c(3)),
                Expr::c(7),
            )),
        ],
    })
}

/// The three configuration families the store must round-trip: plain ROP,
/// a 2-layer VM stack, and a cross-layer composition.
fn config_matrix() -> Vec<(&'static str, ObfConfig)> {
    vec![
        ("rop", ObfConfig::new().rop(RopConfig::ropk(0.25))),
        ("2vm", ObfConfig::new().vm(VmConfig::plain(2))),
        ("rop-over-vm", ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::full())),
    ]
}

fn fresh_run(config: &ObfConfig, seed: u64) -> Image {
    config.pipeline(seed).run_program(&sample_program(), &["f"]).unwrap().into_strict().unwrap().0
}

fn key_for(config: &ObfConfig, seed: u64) -> ArtifactKey {
    ArtifactKey {
        source_hash: raindrop_server::source_hash(&sample_program(), &["f".to_string()]),
        config_hash: config.config_hash(),
        seed,
    }
}

#[test]
fn cache_hits_are_byte_identical_across_configs_and_reopens() {
    let dir = fresh_dir("roundtrip");
    let seed = 11;
    let mut fresh: Vec<(ArtifactKey, Image)> = Vec::new();
    {
        let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
        for (label, config) in config_matrix() {
            let image = fresh_run(&config, seed);
            // Determinism sanity: a second fresh run is already identical.
            assert_eq!(image, fresh_run(&config, seed), "{label}: pipeline not reproducible");
            let key = key_for(&config, seed);
            store.put(&key, &image).unwrap();
            assert_eq!(store.get(&key).unwrap().as_ref(), Some(&image), "{label}: same-session");
            fresh.push((key, image));
        }
    }
    // A brand-new store handle over the same directory must serve every
    // artifact byte-identical to the fresh pipeline output.
    let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
    for (key, image) in &fresh {
        assert_eq!(store.get(key).unwrap().as_ref(), Some(image), "reopen must round-trip {key}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_blob_bytes_demote_to_a_miss() {
    let dir = fresh_dir("corrupt");
    let (_, config) = config_matrix().remove(0);
    let image = fresh_run(&config, 5);
    let key = key_for(&config, 5);
    {
        let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
        store.put(&key, &image).unwrap();
    }
    // Flip one byte in the middle of the blob region.
    let blobs_path = dir.join("blobs.rds");
    let len = std::fs::metadata(&blobs_path).unwrap().len();
    let mut f = std::fs::OpenOptions::new().write(true).open(&blobs_path).unwrap();
    f.seek(SeekFrom::Start(len / 2)).unwrap();
    f.write_all(&[0xFF]).unwrap();
    drop(f);
    let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.get(&key).unwrap(), None, "damaged blob must be a miss, never an artifact");
    // The store recovers by recomputing: a fresh put serves again.
    store.put(&key, &image).unwrap();
    assert_eq!(store.get(&key).unwrap(), Some(image));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_store_files_demote_to_a_miss() {
    for victim in ["index.rds", "blobs.rds"] {
        let dir = fresh_dir("truncate");
        let (_, config) = config_matrix().remove(0);
        let image = fresh_run(&config, 5);
        let key = key_for(&config, 5);
        {
            let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
            store.put(&key, &image).unwrap();
        }
        let path = dir.join(victim);
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 7).unwrap();
        let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(&key).unwrap(), None, "truncated {victim} must be a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn byte_budget_evicts_fifo_and_compaction_reclaims_space() {
    let dir = fresh_dir("evict");
    let config = ObfConfig::new().rop(RopConfig::ropk(0.25));
    let one_blob = raindrop_server::encode_image(&fresh_run(&config, 0)).len() as u64;
    // Room for roughly two artifacts.
    let budget = one_blob * 2 + one_blob / 2;
    let mut store =
        ArtifactStore::open(&dir, StoreConfig { max_blob_bytes: Some(budget) }).unwrap();
    let keys: Vec<ArtifactKey> = (0..4u64)
        .map(|seed| {
            let key = key_for(&config, seed);
            store.put(&key, &fresh_run(&config, seed)).unwrap();
            key
        })
        .collect();
    let stats = store.stats();
    assert!(stats.evictions >= 2, "oldest artifacts evicted: {stats:?}");
    assert!(stats.live_bytes <= budget, "budget respected: {stats:?}");
    assert!(!store.contains(&keys[0]), "FIFO: the first insert goes first");
    assert!(store.contains(&keys[3]), "the newest artifact survives");
    store.compact().unwrap();
    assert_eq!(store.stats().dead_bytes, 0);
    let on_disk = std::fs::metadata(dir.join("blobs.rds")).unwrap().len();
    assert!(on_disk <= 8 + budget, "compaction reclaimed dead blob bytes ({on_disk} bytes left)");
    // Survivors still round-trip after compaction.
    for key in &keys[2..] {
        assert!(store.get(key).unwrap().is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An identity migration from version 0 (for exercising the hook; there
/// never was an on-disk version 0).
struct V0ToV1;

impl Migration for V0ToV1 {
    fn source_version(&self) -> u32 {
        0
    }
    fn migrate_blob(&self, blob: &[u8]) -> Option<Vec<u8>> {
        Some(blob.to_vec())
    }
}

#[test]
fn version_stamps_gate_migration() {
    let dir = fresh_dir("migrate");
    let (_, config) = config_matrix().remove(0);
    let image = fresh_run(&config, 9);
    let key = key_for(&config, 9);
    {
        let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
        store.put(&key, &image).unwrap();
    }
    // Back-stamp both files to version 0.
    for name in ["index.rds", "blobs.rds"] {
        let mut f = std::fs::OpenOptions::new().write(true).open(dir.join(name)).unwrap();
        f.seek(SeekFrom::Start(4)).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
    }
    {
        // Without a bridging migration the store restarts empty.
        let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.get(&key).unwrap(), None);
    }
    // Re-create the version-0 state and open through the migration hook.
    {
        let mut store = ArtifactStore::open(&dir, StoreConfig::default()).unwrap();
        store.put(&key, &image).unwrap();
    }
    for name in ["index.rds", "blobs.rds"] {
        let mut f = std::fs::OpenOptions::new().write(true).open(dir.join(name)).unwrap();
        f.seek(SeekFrom::Start(4)).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
    }
    let mut store =
        ArtifactStore::open_with_migrations(&dir, StoreConfig::default(), &[&V0ToV1]).unwrap();
    assert_eq!(store.get(&key).unwrap(), Some(image), "migrated artifacts survive");
    let _ = std::fs::remove_dir_all(&dir);
}
