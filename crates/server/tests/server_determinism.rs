//! Server-level guarantees: duplicate requests are served from the store
//! with no pipeline re-execution, artifacts survive restarts, and results
//! are independent of the worker count (the RNG-audit mirror of the attack
//! fleet's `fleet_results_are_independent_of_worker_count`).

use raindrop::pipeline::ObfConfig;
use raindrop::RopConfig;
use raindrop_machine::Image;
use raindrop_obfvm::VmConfig;
use raindrop_server::{ProtectRequest, Server, StoreConfig};
use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "raindrop-server-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// f(x) = (x + c) ^ (x >> 1), parameterized so different `c`s give
/// different programs (and so different source hashes).
fn program(c: u64) -> Program {
    Program::new().with_function(Function {
        name: "f".into(),
        params: 1,
        locals: 0,
        body: vec![Stmt::Return(Expr::bin(
            BinOp::Xor,
            Expr::bin(BinOp::Add, Expr::Arg(0), Expr::c(c as i64)),
            Expr::bin(BinOp::Shr, Expr::Arg(0), Expr::c(1)),
        ))],
    })
}

fn request(c: u64, config: ObfConfig, seed: u64) -> ProtectRequest {
    ProtectRequest { program: program(c), targets: vec!["f".into()], config, seed }
}

/// A mixed batch: two programs × two configs × two seeds.
fn request_matrix() -> Vec<ProtectRequest> {
    let mut out = Vec::new();
    for c in [3, 17] {
        for config in [
            ObfConfig::new().rop(RopConfig::ropk(0.25)),
            ObfConfig::new().vm(VmConfig::plain(1)).rop(RopConfig::ropk(1.0)),
        ] {
            for seed in [7, 8] {
                out.push(request(c, config.clone(), seed));
            }
        }
    }
    out
}

#[test]
fn duplicate_request_is_served_from_store_without_rerunning() {
    let dir = fresh_dir("dup");
    let server = Server::start(2, &dir, StoreConfig::default()).unwrap();
    let req = request(3, ObfConfig::new().rop(RopConfig::ropk(0.25)), 7);

    let first = server.submit(req.clone()).wait().expect_completed().unwrap();
    assert!(!first.cache_hit, "cold request must run the pipeline");

    let second = server.submit(req).wait().expect_completed().unwrap();
    assert!(second.cache_hit, "duplicate request must come from the store");
    assert_eq!(first.image, second.image, "cache hit must be byte-identical");
    assert_eq!(first.key, second.key);

    let stats = server.stats();
    assert_eq!(stats.pipeline_runs, 1, "the pipeline ran exactly once: {stats:?}");
    assert_eq!(stats.cache_hits, 1, "{stats:?}");
    assert_eq!(stats.requests, 2);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifacts_survive_server_restart() {
    let dir = fresh_dir("restart");
    let req = request(17, ObfConfig::new().rop(RopConfig::full()), 5);
    let cold = {
        let server = Server::start(2, &dir, StoreConfig::default()).unwrap();
        let r = server.submit(req.clone()).wait().expect_completed().unwrap();
        server.shutdown();
        r
    };
    let server = Server::start(2, &dir, StoreConfig::default()).unwrap();
    let warm = server.submit(req).wait().expect_completed().unwrap();
    assert!(warm.cache_hit, "a restarted server serves persisted artifacts");
    assert_eq!(warm.image, cold.image, "byte-identical across restart");
    assert_eq!(server.stats().pipeline_runs, 0, "no recomputation after restart");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn results_are_independent_of_worker_count() {
    // The RNG audit: protection seeds travel inside requests and worker
    // contexts hold scratch only, so a 1-worker server and an N-worker
    // server must produce identical artifacts for an identical batch.
    let run = |workers: usize| -> Vec<Image> {
        let dir = fresh_dir("workers");
        let server = Server::start(workers, &dir, StoreConfig::default()).unwrap();
        let handles: Vec<_> = request_matrix().into_iter().map(|r| server.submit(r)).collect();
        let images =
            handles.into_iter().map(|h| h.wait().expect_completed().unwrap().image).collect();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        images
    };
    let solo = run(1);
    let fleet = run(4);
    assert_eq!(solo.len(), fleet.len());
    for (i, (a, b)) in solo.iter().zip(&fleet).enumerate() {
        assert_eq!(a, b, "request {i}: worker count perturbed the artifact");
    }
}

#[test]
fn failing_targets_surface_as_errors_not_artifacts() {
    let dir = fresh_dir("fail");
    let server = Server::start(1, &dir, StoreConfig::default()).unwrap();
    let req = ProtectRequest {
        program: program(3),
        targets: vec!["nope".into()],
        config: ObfConfig::new().rop(RopConfig::ropk(0.25)),
        seed: 1,
    };
    let out = server.submit(req).wait().expect_completed();
    assert!(out.is_err(), "unknown target must fail");
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.store.live_entries, 0, "failures are never cached");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
