//! # raindrop-server
//!
//! Protection-as-a-service: a long-running obfuscation server that feeds
//! [`ProtectRequest`]s through the shared `raindrop-sched` scheduler and
//! persists results in a content-addressed, versioned [`ArtifactStore`].
//!
//! The request lifecycle:
//!
//! ```text
//! ProtectRequest { program, targets, config, seed }
//!        │ key = (source_hash, config_hash, seed)
//!        ▼
//!   Scheduler (N workers, each holding a warm PipelineWarm)
//!        │
//!        ├─ store.get(key) hit ──► Protected { cache_hit: true }   (no pipeline run)
//!        │
//!        └─ miss ─► config.pipeline(seed).run_program_with(..)
//!                      │ store.put(key, image)
//!                      ▼
//!                 Protected { cache_hit: false }
//! ```
//!
//! Cache hits are byte-identical to fresh pipeline runs: warm worker state
//! is scratch-only, the codec is canonical, and every blob is checksummed —
//! a damaged store entry demotes to a miss and is recomputed, never served
//! wrong. See [`store`] for the on-disk layout and the migration hooks, and
//! [`codec`] for the artifact encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod recfile;
pub mod server;
pub mod store;

pub use codec::{decode_image, encode_image, CodecError, IMAGE_CODEC_VERSION};
pub use server::{
    source_hash, ProtectError, ProtectRequest, ProtectWorker, Protected, Server, ServerStats,
};
pub use store::{
    ArtifactKey, ArtifactStore, Migration, StoreConfig, StoreError, StoreStats, STORE_VERSION,
};
