//! The content-addressed artifact store.
//!
//! Protection results are keyed by [`ArtifactKey`] — `(source hash, config
//! hash, seed)` — and persisted in a two-file, append-only layout under one
//! directory:
//!
//! ```text
//! <dir>/index.rds   "RDSI" + u32 version, then append-only records:
//!                   [tag][key][blob_off][blob_len][blob_crc][rec_crc]
//!                   tag 1 = put, tag 2 = evict (offsets zero)
//! <dir>/blobs.rds   "RDSB" + u32 version, then raw image blobs
//!                   (see `codec`), appended back to back
//! ```
//!
//! Every index record carries its own checksum (`rec_crc`) and the checksum
//! of the blob it points at (`blob_crc`). Corruption is therefore *local*:
//! a torn or damaged tail record stops replay at the last good record, a
//! flipped blob byte fails its checksum on [`get`](ArtifactStore::get) —
//! both surface as cache misses, never as wrong artifacts (pinned by the
//! `store_roundtrip` suite).
//!
//! The files are version-stamped. Opening a store written at an older
//! version walks the [`Migration`] hooks registered for that version chain
//! and rewrites the store at the current version; an unbridgeable version
//! starts fresh (an artifact store is a cache — losing it costs time, not
//! correctness).
//!
//! Eviction is FIFO by insertion order, driven by a byte budget
//! ([`StoreConfig::max_blob_bytes`]). Evict records only mark entries dead;
//! [`compact`](ArtifactStore::compact) rewrites both files to drop dead
//! bytes, and runs automatically when dead bytes outgrow live bytes.

use crate::codec::{decode_image, encode_image};
use crate::recfile::{self, crc64};
use raindrop_machine::Image;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of `index.rds`.
pub const INDEX_MAGIC: [u8; 4] = *b"RDSI";
/// Magic prefix of `blobs.rds`.
pub const BLOBS_MAGIC: [u8; 4] = *b"RDSB";
/// Current on-disk store format version.
pub const STORE_VERSION: u32 = 1;

const TAG_PUT: u8 = 1;
const TAG_EVICT: u8 = 2;
/// tag + source(16) + config(16) + seed(8) + off(8) + len(8) + blob_crc(8)
/// + rec_crc(8).
const RECORD_LEN: usize = 1 + 16 + 16 + 8 + 8 + 8 + 8 + 8;

/// The cache key of one protection artifact.
///
/// * `source_hash` — stable hash of the protected program *and* the target
///   list (the same program protected for different targets is a different
///   artifact);
/// * `config_hash` — [`raindrop::ObfConfig::config_hash`], which excludes
///   per-pass seeds;
/// * `seed` — the request seed, threaded into every pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArtifactKey {
    /// Stable hash of the source program + target list.
    pub source_hash: u128,
    /// Stable hash of the obfuscation configuration (seed-independent).
    pub config_hash: u128,
    /// The protection seed.
    pub seed: u64,
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}-{:032x}-{:016x}", self.source_hash, self.config_hash, self.seed)
    }
}

/// A migration hook bridging one store version to the next.
///
/// Registered hooks are applied in version order when an older store is
/// opened: each live blob of a version-`source_version()` store is passed
/// through [`migrate_blob`](Migration::migrate_blob) and the store is
/// rewritten at `source_version() + 1`. Returning `None` drops that blob
/// (it will be recomputed on demand — the store is a cache).
pub trait Migration {
    /// The store version this hook upgrades *from*.
    fn source_version(&self) -> u32;
    /// Rewrites one blob into the next version's format.
    fn migrate_blob(&self, blob: &[u8]) -> Option<Vec<u8>>;
}

/// Store construction knobs.
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// FIFO-evict oldest artifacts once live blob bytes exceed this
    /// (`None` = unbounded).
    pub max_blob_bytes: Option<u64>,
}

/// Aggregate store statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts currently retrievable.
    pub live_entries: u64,
    /// Bytes of live blobs.
    pub live_bytes: u64,
    /// Bytes of dead (evicted/overwritten) blobs awaiting compaction.
    pub dead_bytes: u64,
    /// Successful [`get`](ArtifactStore::get) calls.
    pub hits: u64,
    /// [`get`](ArtifactStore::get) calls that found nothing.
    pub misses: u64,
    /// Hits invalidated by checksum/decode failure (served as misses).
    pub corrupt: u64,
    /// Entries evicted by the FIFO byte budget.
    pub evictions: u64,
    /// Times the files were compacted.
    pub compactions: u64,
}

/// Errors from store I/O (corruption is *not* an error — it demotes to a
/// miss; these are real filesystem failures).
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    off: u64,
    len: u64,
    blob_crc: u64,
    /// Monotonic insertion sequence — the FIFO eviction order.
    seq: u64,
}

/// The content-addressed, versioned artifact store. See the [module
/// docs](self) for the on-disk layout and corruption model.
///
/// # Example
///
/// ```no_run
/// use raindrop_server::{ArtifactKey, ArtifactStore, StoreConfig};
///
/// # fn main() -> Result<(), raindrop_server::StoreError> {
/// let mut store = ArtifactStore::open("/tmp/raindrop-store", StoreConfig::default())?;
/// let key = ArtifactKey { source_hash: 1, config_hash: 2, seed: 3 };
/// if store.get(&key)?.is_none() {
///     let image = expensive_protection_run();
///     store.put(&key, &image)?;
/// }
/// assert!(store.get(&key)?.is_some(), "subsequent requests hit the cache");
/// # Ok(())
/// # }
/// # fn expensive_protection_run() -> raindrop_machine::Image { unimplemented!() }
/// ```
pub struct ArtifactStore {
    dir: PathBuf,
    config: StoreConfig,
    index: File,
    blobs: File,
    entries: BTreeMap<ArtifactKey, Entry>,
    next_seq: u64,
    stats: StoreStats,
}

fn encode_record(tag: u8, key: &ArtifactKey, off: u64, len: u64, blob_crc: u64) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_LEN);
    rec.push(tag);
    rec.extend_from_slice(&key.source_hash.to_le_bytes());
    rec.extend_from_slice(&key.config_hash.to_le_bytes());
    rec.extend_from_slice(&key.seed.to_le_bytes());
    rec.extend_from_slice(&off.to_le_bytes());
    rec.extend_from_slice(&len.to_le_bytes());
    rec.extend_from_slice(&blob_crc.to_le_bytes());
    recfile::seal_record(rec)
}

/// A parsed index record.
struct Record {
    tag: u8,
    key: ArtifactKey,
    off: u64,
    len: u64,
    blob_crc: u64,
}

fn decode_record(bytes: &[u8]) -> Option<Record> {
    if bytes.len() != RECORD_LEN {
        return None;
    }
    let body = recfile::open_record(bytes)?;
    let tag = body[0];
    if tag != TAG_PUT && tag != TAG_EVICT {
        return None;
    }
    let u128_at = |o: usize| u128::from_le_bytes(body[o..o + 16].try_into().expect("16 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().expect("8 bytes"));
    Some(Record {
        tag,
        key: ArtifactKey { source_hash: u128_at(1), config_hash: u128_at(17), seed: u64_at(33) },
        off: u64_at(41),
        len: u64_at(49),
        blob_crc: u64_at(57),
    })
}

use recfile::{read_header, write_header};

impl ArtifactStore {
    /// Opens (or creates) a store in `dir` with no migrations registered.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<ArtifactStore, StoreError> {
        ArtifactStore::open_with_migrations(dir, config, &[])
    }

    /// Opens (or creates) a store in `dir`. A store written at an older
    /// format version is upgraded through `migrations` (see [`Migration`]);
    /// with no bridging chain the store restarts empty.
    pub fn open_with_migrations(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        migrations: &[&dyn Migration],
    ) -> Result<ArtifactStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let index_path = dir.join("index.rds");
        let blobs_path = dir.join("blobs.rds");

        // Replay whatever is on disk (tolerating any corruption) into the
        // in-memory table, migrating across versions if needed.
        let index_bytes = std::fs::read(&index_path).unwrap_or_default();
        let blob_bytes = std::fs::read(&blobs_path).unwrap_or_default();
        let disk_version = read_header(&index_bytes, INDEX_MAGIC)
            .filter(|v| read_header(&blob_bytes, BLOBS_MAGIC) == Some(*v));
        let mut replayed: Vec<(ArtifactKey, Vec<u8>)> = Vec::new();
        if let Some(mut version) = disk_version {
            let mut live: BTreeMap<ArtifactKey, (u64, u64, u64)> = BTreeMap::new();
            let mut order: Vec<ArtifactKey> = Vec::new();
            let mut pos = recfile::HEADER_LEN;
            while pos + RECORD_LEN <= index_bytes.len() {
                let Some(rec) = decode_record(&index_bytes[pos..pos + RECORD_LEN]) else {
                    break; // torn/corrupt tail: everything after is a miss
                };
                pos += RECORD_LEN;
                match rec.tag {
                    TAG_PUT => {
                        if live.insert(rec.key, (rec.off, rec.len, rec.blob_crc)).is_none() {
                            order.push(rec.key);
                        }
                    }
                    _ => {
                        live.remove(&rec.key);
                    }
                }
            }
            for key in order {
                let Some((off, len, blob_crc)) = live.get(&key).copied() else { continue };
                let (off, len) = (off as usize, len as usize);
                let Some(end) = off.checked_add(len).filter(|e| *e <= blob_bytes.len()) else {
                    continue; // blob out of range: miss
                };
                let blob = &blob_bytes[off..end];
                if crc64(blob) != blob_crc {
                    continue; // damaged blob: miss
                }
                replayed.push((key, blob.to_vec()));
            }
            // Walk the migration chain up to the current version; a gap in
            // the chain abandons the old contents (cache, not database).
            while version < STORE_VERSION {
                match migrations.iter().find(|m| m.source_version() == version) {
                    Some(m) => {
                        replayed = replayed
                            .into_iter()
                            .filter_map(|(k, blob)| m.migrate_blob(&blob).map(|b| (k, b)))
                            .collect();
                        version += 1;
                    }
                    None => {
                        replayed.clear();
                        break;
                    }
                }
            }
            if version > STORE_VERSION {
                replayed.clear(); // written by a future format
            }
        }

        // Rewrite both files from the replayed state: this compacts dead
        // bytes for free and stamps the current version.
        let mut index = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&index_path)?;
        let mut blobs = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&blobs_path)?;
        write_header(&mut index, INDEX_MAGIC, STORE_VERSION)?;
        write_header(&mut blobs, BLOBS_MAGIC, STORE_VERSION)?;
        let mut store = ArtifactStore {
            dir,
            config,
            index,
            blobs,
            entries: BTreeMap::new(),
            next_seq: 0,
            stats: StoreStats::default(),
        };
        for (key, blob) in replayed {
            store.append_blob(&key, &blob)?;
        }
        store.flush()?;
        // Replay artifacts are inventory, not traffic: forget counters.
        store.stats = StoreStats {
            live_entries: store.entries.len() as u64,
            live_bytes: store.live_bytes(),
            ..StoreStats::default()
        };
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn live_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.len).sum()
    }

    fn append_blob(&mut self, key: &ArtifactKey, blob: &[u8]) -> Result<(), StoreError> {
        let off = self.blobs.seek(SeekFrom::End(0))?;
        self.blobs.write_all(blob)?;
        let blob_crc = crc64(blob);
        let rec = encode_record(TAG_PUT, key, off, blob.len() as u64, blob_crc);
        self.index.seek(SeekFrom::End(0))?;
        self.index.write_all(&rec)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(old) =
            self.entries.insert(*key, Entry { off, len: blob.len() as u64, blob_crc, seq })
        {
            self.stats.dead_bytes += old.len;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.blobs.flush()?;
        self.index.flush()?;
        Ok(())
    }

    /// Stores `image` under `key` (overwriting any previous artifact),
    /// enforcing the FIFO byte budget and auto-compacting when dead bytes
    /// outgrow live bytes.
    pub fn put(&mut self, key: &ArtifactKey, image: &Image) -> Result<(), StoreError> {
        let blob = encode_image(image);
        self.append_blob(key, &blob)?;
        if let Some(budget) = self.config.max_blob_bytes {
            while self.live_bytes() > budget && self.entries.len() > 1 {
                let oldest = *self.entries.iter().min_by_key(|(_, e)| e.seq).expect("non-empty").0;
                self.evict(&oldest)?;
            }
        }
        if self.stats.dead_bytes > self.live_bytes() {
            self.compact()?;
        }
        self.flush()?;
        self.stats.live_entries = self.entries.len() as u64;
        self.stats.live_bytes = self.live_bytes();
        Ok(())
    }

    /// Marks `key` dead (its blob bytes are reclaimed by the next
    /// [`compact`](ArtifactStore::compact)).
    pub fn evict(&mut self, key: &ArtifactKey) -> Result<bool, StoreError> {
        let Some(entry) = self.entries.remove(key) else { return Ok(false) };
        let rec = encode_record(TAG_EVICT, key, 0, 0, 0);
        self.index.seek(SeekFrom::End(0))?;
        self.index.write_all(&rec)?;
        self.stats.dead_bytes += entry.len;
        self.stats.evictions += 1;
        self.stats.live_entries = self.entries.len() as u64;
        self.stats.live_bytes = self.live_bytes();
        Ok(true)
    }

    /// Retrieves the artifact stored under `key`. Damaged records or blobs
    /// demote to a miss (and the entry is dropped so the damage is not
    /// re-read).
    pub fn get(&mut self, key: &ArtifactKey) -> Result<Option<Image>, StoreError> {
        let Some(entry) = self.entries.get(key).copied() else {
            self.stats.misses += 1;
            return Ok(None);
        };
        let mut blob = vec![0u8; entry.len as usize];
        let ok = self
            .blobs
            .seek(SeekFrom::Start(entry.off))
            .and_then(|_| self.blobs.read_exact(&mut blob))
            .is_ok();
        let image =
            if ok && crc64(&blob) == entry.blob_crc { decode_image(&blob).ok() } else { None };
        match image {
            Some(image) => {
                self.stats.hits += 1;
                Ok(Some(image))
            }
            None => {
                self.entries.remove(key);
                self.stats.corrupt += 1;
                self.stats.misses += 1;
                self.stats.live_entries = self.entries.len() as u64;
                self.stats.live_bytes = self.live_bytes();
                Ok(None)
            }
        }
    }

    /// Whether `key` currently has a (believed-live) artifact.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Rewrites both files keeping only live entries, reclaiming dead blob
    /// bytes and collapsing the index to one record per artifact.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let mut ordered: Vec<(ArtifactKey, Entry)> =
            self.entries.iter().map(|(k, e)| (*k, *e)).collect();
        ordered.sort_by_key(|(_, e)| e.seq);
        let mut kept: Vec<(ArtifactKey, Vec<u8>)> = Vec::with_capacity(ordered.len());
        for (key, entry) in ordered {
            let mut blob = vec![0u8; entry.len as usize];
            let ok = self
                .blobs
                .seek(SeekFrom::Start(entry.off))
                .and_then(|_| self.blobs.read_exact(&mut blob))
                .is_ok();
            if ok && crc64(&blob) == entry.blob_crc {
                kept.push((key, blob));
            }
        }
        self.index.set_len(0)?;
        self.index.seek(SeekFrom::Start(0))?;
        self.blobs.set_len(0)?;
        self.blobs.seek(SeekFrom::Start(0))?;
        write_header(&mut self.index, INDEX_MAGIC, STORE_VERSION)?;
        write_header(&mut self.blobs, BLOBS_MAGIC, STORE_VERSION)?;
        self.entries.clear();
        for (key, blob) in kept {
            self.append_blob(&key, &blob)?;
        }
        self.flush()?;
        self.stats.dead_bytes = 0;
        self.stats.compactions += 1;
        self.stats.live_entries = self.entries.len() as u64;
        self.stats.live_bytes = self.live_bytes();
        Ok(())
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> StoreStats {
        self.stats.clone()
    }
}
