//! Shared versioned + crc64 record-file helpers.
//!
//! Both durable formats in this workspace — the [`ArtifactStore`] index
//! (`index.rds`/`blobs.rds`) and the attack-campaign checkpoint log — follow
//! the same discipline: a 4-byte magic + `u32` version header, append-only
//! records each sealed with a trailing crc64, and *tolerant replay* that
//! stops at the first torn or damaged record instead of failing the whole
//! file. This module is the single home of that format logic:
//!
//! * [`crc64`], [`write_header`], [`read_header`] — the shared primitives;
//! * [`seal_record`] / [`open_record`] — fixed-size records (the store's
//!   index knows its record length out of band);
//! * [`frame_record`] / [`FramedReader`] — length-prefixed variable-size
//!   records (campaign checkpoints carry serialized frontiers of arbitrary
//!   size);
//! * [`encode_value`] / [`decode_value`] — a canonical binary encoding of
//!   the vendored-serde [`Value`] data model, so any
//!   `Serialize + Deserialize` type can travel inside a record body
//!   ([`encode_payload`] / [`decode_payload`]).
//!
//! Corruption is always *local and fail-safe*: a record that does not
//! checksum clean is indistinguishable from end-of-file, and a payload that
//! does not decode is `None` — callers demote both to "recompute", never to
//! wrong data.
//!
//! [`ArtifactStore`]: crate::ArtifactStore

use raindrop::stable_hash_bytes;
use serde::{Deserialize, Serialize, Value};
use std::fs::File;
use std::io::Write;

/// Byte length of the `magic + version` file header.
pub const HEADER_LEN: usize = 8;

/// The checksum sealing every record: the workspace stable hash narrowed to
/// 64 bits. Not cryptographic — it guards against torn writes and bit rot,
/// not adversaries.
pub fn crc64(bytes: &[u8]) -> u64 {
    stable_hash_bytes(bytes) as u64
}

/// Writes a `magic + u32 version` header at the file's current position.
pub fn write_header(file: &mut File, magic: [u8; 4], version: u32) -> std::io::Result<()> {
    file.write_all(&magic)?;
    file.write_all(&version.to_le_bytes())?;
    Ok(())
}

/// Reads a file header; `None` when missing/torn/wrong magic.
pub fn read_header(bytes: &[u8], magic: [u8; 4]) -> Option<u32> {
    if bytes.len() < HEADER_LEN || bytes[..4] != magic {
        return None;
    }
    Some(u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")))
}

/// Seals a fixed-size record body with its trailing crc64. The caller owns
/// the body layout; the on-disk record is `body ++ crc64(body)`.
pub fn seal_record(mut body: Vec<u8>) -> Vec<u8> {
    let crc = crc64(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Opens a fixed-size sealed record: verifies the trailing crc64 and
/// returns the body, or `None` for torn/damaged bytes.
pub fn open_record(record: &[u8]) -> Option<&[u8]> {
    if record.len() < 8 {
        return None;
    }
    let (body, crc_bytes) = record.split_at(record.len() - 8);
    let stored = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
    (crc64(body) == stored).then_some(body)
}

/// Frames a variable-size record: `u32 len ++ body ++ crc64(len ++ body)`.
pub fn frame_record(body: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + body.len() + 8);
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(body);
    let crc = crc64(&rec);
    rec.extend_from_slice(&crc.to_le_bytes());
    rec
}

/// Iterates the framed records of a byte buffer, stopping at the first
/// torn, truncated or damaged record (tolerant replay: everything after a
/// bad record is treated as never written).
pub struct FramedReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FramedReader<'a> {
    /// Starts reading at `start` (typically [`HEADER_LEN`]).
    pub fn new(bytes: &'a [u8], start: usize) -> FramedReader<'a> {
        FramedReader { bytes, pos: start.min(bytes.len()) }
    }

    /// The offset of the next unread byte — after iteration ends, the
    /// position replay stopped at (file length when the log was clean).
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for FramedReader<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let rest = &self.bytes[self.pos..];
        if rest.len() < 12 {
            return None; // not even len + crc: torn tail
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let total = 4usize.checked_add(len)?.checked_add(8)?;
        if total > rest.len() {
            return None; // truncated record
        }
        let framed = &rest[..total];
        let (sealed, crc_bytes) = framed.split_at(total - 8);
        let stored = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
        if crc64(sealed) != stored {
            return None; // damaged record: stop replay here
        }
        self.pos += total;
        Some(&sealed[4..])
    }
}

// --- canonical binary Value codec -------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_SEQ: u8 = 6;
const TAG_MAP: u8 = 7;

/// Nesting depth cap for [`decode_value`]: deeper (i.e. corrupt) input
/// errors instead of overflowing the stack.
const MAX_DECODE_DEPTH: usize = 128;

/// Appends the canonical binary encoding of `v` to `out`: a 1-byte tag,
/// then little-endian scalars / `u32`-length-prefixed strings, sequences
/// and maps. The encoding is deterministic — equal values encode to equal
/// bytes — which is what lets record contents participate in crc64 checks
/// and content hashes.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::U64(n) => {
            out.push(TAG_U64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(s, out);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v) in entries {
                put_str(k, out);
                encode_value(v, out);
            }
        }
    }
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Decodes a canonical binary [`Value`], requiring the buffer to be exactly
/// one encoded value. `None` for any malformed input.
pub fn decode_value(bytes: &[u8]) -> Option<Value> {
    let mut pos = 0usize;
    let v = decode_at(bytes, &mut pos, 0)?;
    (pos == bytes.len()).then_some(v)
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    if end > bytes.len() {
        return None;
    }
    let slice = &bytes[*pos..end];
    *pos = end;
    Some(slice)
}

fn take_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(take(bytes, pos, 4)?.try_into().expect("4 bytes")) as usize;
    let raw = take(bytes, pos, len)?;
    String::from_utf8(raw.to_vec()).ok()
}

fn decode_at(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Value> {
    if depth > MAX_DECODE_DEPTH {
        return None;
    }
    let tag = *take(bytes, pos, 1)?.first()?;
    match tag {
        TAG_NULL => Some(Value::Null),
        TAG_BOOL => match take(bytes, pos, 1)?[0] {
            0 => Some(Value::Bool(false)),
            1 => Some(Value::Bool(true)),
            _ => None,
        },
        TAG_I64 => {
            Some(Value::I64(i64::from_le_bytes(take(bytes, pos, 8)?.try_into().expect("8 bytes"))))
        }
        TAG_U64 => {
            Some(Value::U64(u64::from_le_bytes(take(bytes, pos, 8)?.try_into().expect("8 bytes"))))
        }
        TAG_F64 => Some(Value::F64(f64::from_bits(u64::from_le_bytes(
            take(bytes, pos, 8)?.try_into().expect("8 bytes"),
        )))),
        TAG_STR => take_str(bytes, pos).map(Value::Str),
        TAG_SEQ => {
            let count =
                u32::from_le_bytes(take(bytes, pos, 4)?.try_into().expect("4 bytes")) as usize;
            // Every element costs at least one tag byte; a count beyond the
            // remaining input is corrupt, not a huge allocation.
            if count > bytes.len().saturating_sub(*pos) {
                return None;
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_at(bytes, pos, depth + 1)?);
            }
            Some(Value::Seq(items))
        }
        TAG_MAP => {
            let count =
                u32::from_le_bytes(take(bytes, pos, 4)?.try_into().expect("4 bytes")) as usize;
            if count > bytes.len().saturating_sub(*pos) {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let k = take_str(bytes, pos)?;
                let v = decode_at(bytes, pos, depth + 1)?;
                entries.push((k, v));
            }
            Some(Value::Map(entries))
        }
        _ => None,
    }
}

/// Serializes any `Serialize` type to its canonical binary encoding.
pub fn encode_payload<T: Serialize>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(&value.to_value(), &mut out);
    out
}

/// Rebuilds a `Deserialize` type from its canonical binary encoding.
/// `None` for malformed bytes or a shape mismatch — corruption demotes,
/// never panics.
pub fn decode_payload<T: Deserialize>(bytes: &[u8]) -> Option<T> {
    T::from_value(&decode_value(bytes)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_records_round_trip_and_reject_damage() {
        let rec = seal_record(b"hello record".to_vec());
        assert_eq!(open_record(&rec), Some(&b"hello record"[..]));
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x40;
            assert_eq!(open_record(&bad), None, "flipped byte {i} must not verify");
        }
        assert_eq!(open_record(&rec[..rec.len() - 1]), None, "truncated");
    }

    #[test]
    fn framed_replay_stops_at_first_bad_record() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(b"one"));
        log.extend_from_slice(&frame_record(b"two"));
        log.extend_from_slice(&frame_record(b"three"));
        let all: Vec<&[u8]> = FramedReader::new(&log, 0).collect();
        assert_eq!(all, vec![&b"one"[..], &b"two"[..], &b"three"[..]]);

        // Damage the middle record: replay keeps the head, drops the tail.
        let first_len = frame_record(b"one").len();
        let mut bad = log.clone();
        bad[first_len + 6] ^= 0xff;
        let mut rd = FramedReader::new(&bad, 0);
        assert_eq!(rd.next(), Some(&b"one"[..]));
        assert_eq!(rd.next(), None);
        assert_eq!(rd.pos(), first_len, "replay stopped at the damage");

        // A torn tail (partial record) is end-of-file.
        let torn = &log[..log.len() - 3];
        let head: Vec<&[u8]> = FramedReader::new(torn, 0).collect();
        assert_eq!(head, vec![&b"one"[..], &b"two"[..]]);
    }

    #[test]
    fn value_codec_round_trips_every_variant() {
        let v = Value::Map(vec![
            ("null".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
            ("i".into(), Value::I64(-42)),
            ("u".into(), Value::U64(u64::MAX)),
            ("f".into(), Value::F64(1.5)),
            ("s".into(), Value::Str("héllo".into())),
            ("seq".into(), Value::Seq(vec![Value::U64(1), Value::Str("x".into())])),
            ("map".into(), Value::Map(vec![("k".into(), Value::I64(0))])),
        ]);
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        assert_eq!(decode_value(&bytes), Some(v));
    }

    #[test]
    fn value_codec_rejects_malformed_input() {
        assert_eq!(decode_value(&[]), None);
        assert_eq!(decode_value(&[99]), None, "unknown tag");
        assert_eq!(decode_value(&[TAG_BOOL, 2]), None, "bad bool");
        assert_eq!(decode_value(&[TAG_U64, 1, 2]), None, "short scalar");
        assert_eq!(decode_value(&[TAG_SEQ, 0xff, 0xff, 0xff, 0xff]), None, "absurd count");
        let mut ok = Vec::new();
        encode_value(&Value::U64(7), &mut ok);
        ok.push(0);
        assert_eq!(decode_value(&ok), None, "trailing bytes");
        // Deep nesting beyond the cap decodes to None instead of crashing.
        let mut deep = Vec::new();
        for _ in 0..200 {
            deep.push(TAG_SEQ);
            deep.extend_from_slice(&1u32.to_le_bytes());
        }
        deep.push(TAG_NULL);
        assert_eq!(decode_value(&deep), None);
    }

    #[test]
    fn typed_payloads_round_trip() {
        let data: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        let bytes = encode_payload(&data);
        assert_eq!(decode_payload::<Vec<(u64, String)>>(&bytes), Some(data));
        assert_eq!(decode_payload::<Vec<(u64, String)>>(b"junk"), None);
    }
}
