//! The long-running protection service.
//!
//! A [`Server`] owns a [`Scheduler`] of [`ProtectWorker`]s — each worker
//! thread holds a warm [`PipelineWarm`] reused across protection jobs — and
//! a shared [`ArtifactStore`]. Every [`ProtectRequest`] is keyed by
//! `(source hash, config hash, seed)`; a key already in the store is served
//! from it *without* re-running the pipeline, and warm-state reuse is
//! bit-invisible, so cache hits are byte-identical to a fresh run (pinned
//! by the server test suite).
//!
//! Determinism: the request seed is the only randomness source — it is
//! threaded into every pass by [`ObfConfig::pipeline`], and worker contexts
//! hold scratch only — so results are independent of the worker count
//! (pinned by `one_worker_and_many_workers_protect_identically`).

use crate::store::{ArtifactKey, ArtifactStore, StoreConfig, StoreError, StoreStats};
use raindrop::pipeline::{ObfConfig, PipelineWarm};
use raindrop::stable_hash_bytes;
use raindrop_machine::Image;
use raindrop_sched::{JobHandle, Scheduler, SchedulerStats, WorkerCtx};
use raindrop_synth::minic::Program;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One protection request: a program, the functions to protect, the
/// obfuscation configuration and the seed.
#[derive(Debug, Clone)]
pub struct ProtectRequest {
    /// The MiniC program to protect.
    pub program: Program,
    /// Names of the functions to obfuscate.
    pub targets: Vec<String>,
    /// The (seed-free) obfuscation configuration.
    pub config: ObfConfig,
    /// The protection seed; together with the source and config hashes it
    /// fully determines the artifact.
    pub seed: u64,
}

impl ProtectRequest {
    /// The artifact store key of this request.
    pub fn key(&self) -> ArtifactKey {
        ArtifactKey {
            source_hash: source_hash(&self.program, &self.targets),
            config_hash: self.config.config_hash(),
            seed: self.seed,
        }
    }
}

/// Stable hash of a program *and* its target list — the `source_hash`
/// component of an [`ArtifactKey`]. Uses the deterministic JSON rendering
/// of the program (field order fixed by the derive), so equal programs hash
/// equal across processes.
pub fn source_hash(program: &Program, targets: &[String]) -> u128 {
    let mut rendered = serde_json::to_string(program).unwrap_or_default();
    for t in targets {
        rendered.push_str(";target=");
        rendered.push_str(t);
    }
    stable_hash_bytes(rendered.as_bytes())
}

/// A served protection: the artifact plus provenance.
#[derive(Debug, Clone)]
pub struct Protected {
    /// The store key the artifact lives under.
    pub key: ArtifactKey,
    /// The protected image.
    pub image: Image,
    /// Whether the artifact came from the store (no pipeline execution).
    pub cache_hit: bool,
    /// Wall-clock time inside the job (pipeline run or store read).
    pub wall: Duration,
}

/// Why a request failed.
#[derive(Debug, Clone)]
pub struct ProtectError {
    /// Human-readable failure description (pipeline or store error).
    pub message: String,
}

impl fmt::Display for ProtectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protection failed: {}", self.message)
    }
}

impl std::error::Error for ProtectError {}

/// Warm per-worker state: one [`PipelineWarm`] reused across every job the
/// worker runs. Scratch only — reuse never changes results (pinned by
/// `warm_state_reuse_is_invisible` in `raindrop`).
pub struct ProtectWorker {
    /// The reusable pipeline scratch (materialization buffers).
    pub warm: PipelineWarm,
}

impl WorkerCtx for ProtectWorker {
    fn create(_worker: usize) -> ProtectWorker {
        ProtectWorker { warm: PipelineWarm::new() }
    }
}

#[derive(Default)]
struct ServerCounters {
    requests: AtomicU64,
    pipeline_runs: AtomicU64,
    cache_hits: AtomicU64,
    failures: AtomicU64,
}

/// Aggregate server statistics.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests submitted.
    pub requests: u64,
    /// Requests that executed the protection pipeline.
    pub pipeline_runs: u64,
    /// Requests served from the artifact store.
    pub cache_hits: u64,
    /// Requests that failed (pipeline or store error).
    pub failures: u64,
    /// The underlying scheduler's statistics.
    pub scheduler: SchedulerStats,
    /// The artifact store's statistics.
    pub store: StoreStats,
}

/// The protection-as-a-service front end. See the [module docs](self).
///
/// # Example
///
/// ```no_run
/// use raindrop::{ObfConfig, RopConfig};
/// use raindrop_server::{ProtectRequest, Server, StoreConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let program: raindrop_synth::minic::Program = unimplemented!();
/// let server = Server::start(4, "/tmp/raindrop-store", StoreConfig::default())?;
/// let request = ProtectRequest {
///     program,
///     targets: vec!["f".into()],
///     config: ObfConfig::new().rop(RopConfig::ropk(0.25)),
///     seed: 7,
/// };
/// let first = server.submit(request.clone()).wait().expect_completed()?;
/// assert!(!first.cache_hit, "cold request runs the pipeline");
/// let again = server.submit(request).wait().expect_completed()?;
/// assert!(again.cache_hit, "duplicate request is served from the store");
/// assert_eq!(first.image, again.image, "byte-identical");
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Server {
    sched: Scheduler<ProtectWorker>,
    store: Arc<Mutex<ArtifactStore>>,
    counters: Arc<ServerCounters>,
}

impl Server {
    /// Starts a server with `workers` protection workers over a store in
    /// `store_dir`.
    pub fn start(
        workers: usize,
        store_dir: impl AsRef<Path>,
        store_config: StoreConfig,
    ) -> Result<Server, StoreError> {
        let store = ArtifactStore::open(store_dir, store_config)?;
        Ok(Server {
            sched: Scheduler::new(workers),
            store: Arc::new(Mutex::new(store)),
            counters: Arc::new(ServerCounters::default()),
        })
    }

    /// The number of protection workers.
    pub fn workers(&self) -> usize {
        self.sched.workers()
    }

    /// Submits a request at the default priority. The returned handle can
    /// be waited on or cancelled; the job first probes the artifact store
    /// and only runs the pipeline on a miss.
    pub fn submit(&self, request: ProtectRequest) -> JobHandle<Result<Protected, ProtectError>> {
        self.submit_prio(0, request)
    }

    /// [`submit`](Server::submit) with an explicit priority (higher runs
    /// first).
    pub fn submit_prio(
        &self,
        priority: i32,
        request: ProtectRequest,
    ) -> JobHandle<Result<Protected, ProtectError>> {
        let store = Arc::clone(&self.store);
        let counters = Arc::clone(&self.counters);
        counters.requests.fetch_add(1, Ordering::Relaxed);
        self.sched.submit_prio(priority, move |worker: &mut ProtectWorker, _ctl| {
            let started = std::time::Instant::now();
            let key = request.key();

            // Fast path: serve from the store, no pipeline execution.
            let cached = store
                .lock()
                .expect("store lock")
                .get(&key)
                .map_err(|e| ProtectError { message: e.to_string() })?;
            if let Some(image) = cached {
                counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Protected { key, image, cache_hit: true, wall: started.elapsed() });
            }

            // Miss: run the pipeline through this worker's warm state. The
            // store lock is *not* held across the run — concurrent identical
            // requests may both compute, but they compute identical bytes.
            counters.pipeline_runs.fetch_add(1, Ordering::Relaxed);
            let (image, _report) = request
                .config
                .pipeline(request.seed)
                .run_program_with(&request.program, &request.targets, &mut worker.warm)
                .and_then(|run| run.into_strict())
                .map_err(|e| {
                    counters.failures.fetch_add(1, Ordering::Relaxed);
                    ProtectError { message: e.to_string() }
                })?;
            store
                .lock()
                .expect("store lock")
                .put(&key, &image)
                .map_err(|e| ProtectError { message: e.to_string() })?;
            Ok(Protected { key, image, cache_hit: false, wall: started.elapsed() })
        })
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            pipeline_runs: self.counters.pipeline_runs.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            failures: self.counters.failures.load(Ordering::Relaxed),
            scheduler: self.sched.stats(),
            store: self.store.lock().expect("store lock").stats(),
        }
    }

    /// Runs `f` against the underlying store (e.g. to evict or compact).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut ArtifactStore) -> R) -> R {
        f(&mut self.store.lock().expect("store lock"))
    }

    /// Drains every submitted job and stops the workers. The store is
    /// flushed by its own writes; dropping the server has the same effect.
    pub fn shutdown(self) {
        self.sched.shutdown();
    }
}
