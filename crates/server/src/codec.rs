//! A versioned binary codec for [`Image`] artifacts.
//!
//! The vendored `serde_json` stand-in is serialize-only, so stored
//! artifacts use a hand-rolled binary format instead: every variable-length
//! field is length-prefixed (u64 little-endian), integers are little-endian
//! fixed width, and the whole blob opens with a magic and a format version
//! so a store written by a future codec is recognized (and migrated or
//! rejected) rather than misparsed.
//!
//! Decoding is strict — any length that does not add up, any trailing
//! bytes, any bad magic — returns a [`CodecError`], which the store treats
//! as a cache miss. Encode-then-decode is the identity (pinned by the
//! round-trip tests); two structurally equal images encode to identical
//! bytes because every field is written in a canonical order.

use raindrop_machine::{FuncSym, Image};
use std::collections::BTreeMap;
use std::fmt;

/// Magic prefix of an encoded image blob.
pub const IMAGE_MAGIC: [u8; 4] = *b"RDIM";
/// Current image codec version.
pub const IMAGE_CODEC_VERSION: u32 = 1;

/// Why a blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with [`IMAGE_MAGIC`].
    BadMagic,
    /// The blob's codec version has no decoder (and no migration supplied
    /// one).
    UnsupportedVersion(u32),
    /// A length prefix points past the end of the blob.
    Truncated,
    /// The blob decodes but leaves trailing bytes.
    TrailingBytes(usize),
    /// A string field is not valid UTF-8.
    BadString,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "blob does not start with the image magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported image codec version {v}"),
            CodecError::Truncated => write!(f, "blob is truncated"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the image"),
            CodecError::BadString => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Encodes an image into a self-contained, canonical byte blob.
pub fn encode_image(image: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        4 + 4 + 8 * 4 + image.text.len() + image.data.len() + 64 * image.symbols.len(),
    );
    out.extend_from_slice(&IMAGE_MAGIC);
    out.extend_from_slice(&IMAGE_CODEC_VERSION.to_le_bytes());
    put_u64(&mut out, image.text_base);
    put_bytes(&mut out, &image.text);
    put_u64(&mut out, image.data_base);
    put_bytes(&mut out, &image.data);
    put_u64(&mut out, image.symbols.len() as u64);
    for (name, addr) in &image.symbols {
        put_str(&mut out, name);
        put_u64(&mut out, *addr);
    }
    put_u64(&mut out, image.functions.len() as u64);
    for f in &image.functions {
        put_str(&mut out, &f.name);
        put_u64(&mut out, f.addr);
        put_u64(&mut out, f.size);
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::BadString)
    }
}

/// Decodes a blob produced by [`encode_image`]. Strict: every byte must be
/// accounted for.
pub fn decode_image(blob: &[u8]) -> Result<Image, CodecError> {
    let mut r = Reader { buf: blob, pos: 0 };
    if r.take(4)? != IMAGE_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u32()?;
    if version != IMAGE_CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let text_base = r.u64()?;
    let text = r.bytes()?;
    let data_base = r.u64()?;
    let data = r.bytes()?;
    let n_symbols = r.u64()?;
    let mut symbols = BTreeMap::new();
    for _ in 0..n_symbols {
        let name = r.string()?;
        let addr = r.u64()?;
        symbols.insert(name, addr);
    }
    let n_functions = r.u64()?;
    let mut functions = Vec::new();
    for _ in 0..n_functions {
        let name = r.string()?;
        let addr = r.u64()?;
        let size = r.u64()?;
        functions.push(FuncSym { name, addr, size });
    }
    if r.pos != blob.len() {
        return Err(CodecError::TrailingBytes(blob.len() - r.pos));
    }
    Ok(Image { text_base, text, data_base, data, symbols, functions })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> Image {
        let mut symbols = BTreeMap::new();
        symbols.insert("f".to_string(), 0x1000);
        symbols.insert("__rop_ss".to_string(), 0x4000);
        Image {
            text_base: 0x1000,
            text: vec![0x90; 37],
            data_base: 0x4000,
            data: (0..=255u8).collect(),
            symbols,
            functions: vec![FuncSym { name: "f".into(), addr: 0x1000, size: 37 }],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let img = sample_image();
        let blob = encode_image(&img);
        assert_eq!(decode_image(&blob).unwrap(), img);
    }

    #[test]
    fn equal_images_encode_identically() {
        let a = encode_image(&sample_image());
        let b = encode_image(&sample_image());
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let blob = encode_image(&sample_image());
        for cut in [0, 3, 4, 7, 8, blob.len() / 2, blob.len() - 1] {
            assert!(decode_image(&blob[..cut]).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut blob = encode_image(&sample_image());
        blob[0] ^= 0xff;
        assert_eq!(decode_image(&blob), Err(CodecError::BadMagic));
        let mut blob = encode_image(&sample_image());
        blob[4] = 99;
        assert_eq!(decode_image(&blob), Err(CodecError::UnsupportedVersion(99)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut blob = encode_image(&sample_image());
        blob.push(0);
        assert_eq!(decode_image(&blob), Err(CodecError::TrailingBytes(1)));
    }
}
