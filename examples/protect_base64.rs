//! Protecting a real encoding routine: rewrite the base64 encoder into a ROP
//! chain, verify it still matches RFC 4648 output, and show the run-time
//! cost.
//!
//! Run with `cargo run --release -p raindrop-bench --example protect_base64`.

use raindrop::{Rewriter, RopConfig};
use raindrop_machine::Emulator;
use raindrop_synth::{codegen, workloads};

fn encode(
    image: &raindrop_machine::Image,
    data: &[u8],
) -> Result<(String, u64), Box<dyn std::error::Error>> {
    let mut emu = Emulator::new(image);
    emu.set_budget(5_000_000_000);
    emu.mem.write_bytes(image.symbol("b64_in")?, data);
    emu.call_named(image, "base64_encode", &[data.len() as u64])?;
    let out_len = data.len().div_ceil(3) * 4;
    let mut buf = vec![0u8; out_len];
    emu.mem.read_bytes(image.symbol("b64_out")?, &mut buf);
    Ok((String::from_utf8_lossy(&buf).into_owned(), emu.stats().cycles))
}

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workloads::base64();
    let original = codegen::compile(&w.program)?;
    let mut protected = original.clone();
    let mut rewriter = Rewriter::new(RopConfig::full());
    rewriter.rewrite_function(&mut protected, "base64_encode")?;

    for input in [b"Man".as_slice(), b"light work.".as_slice()] {
        let (plain, plain_cycles) = encode(&original, input)?;
        let (obf, obf_cycles) = encode(&protected, input)?;
        assert_eq!(plain, obf);
        println!(
            "base64({:?}) = {}   native {} cycles, ROP {} cycles ({:.1}x)",
            String::from_utf8_lossy(input),
            obf,
            plain_cycles,
            obf_cycles,
            obf_cycles as f64 / plain_cycles as f64
        );
    }
    Ok(())
}
