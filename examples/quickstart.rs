//! Quickstart: compile a small function, rewrite it into a ROP chain
//! through the `Pipeline` builder, run both, and show what the binary looks
//! like afterwards.
//!
//! Run with `cargo run -p raindrop-bench --example quickstart`.

use raindrop::pipeline::{Pipeline, RopPass, VerifyPolicy};
use raindrop_machine::Emulator;
use raindrop_synth::codegen;
use raindrop_synth::minic::{BinOp, Expr, Function, Program, Stmt};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // f(x) = sum of i*x for i in 1..=10
    let f = Function {
        name: "weighted_sum".into(),
        params: 1,
        locals: 2,
        body: vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::Assign(1, Expr::c(1)),
            Stmt::While(
                Expr::bin(BinOp::Le, Expr::Var(1), Expr::c(10)),
                vec![
                    Stmt::Assign(
                        0,
                        Expr::bin(
                            BinOp::Add,
                            Expr::Var(0),
                            Expr::bin(BinOp::Mul, Expr::Var(1), Expr::Arg(0)),
                        ),
                    ),
                    Stmt::Assign(1, Expr::bin(BinOp::Add, Expr::Var(1), Expr::c(1))),
                ],
            ),
            Stmt::Return(Expr::Var(0)),
        ],
    };
    let program = Program::new().with_function(f);
    let original = codegen::compile(&program)?;

    // One pipeline: full-strength ROP rewriting plus built-in differential
    // verification against the unobfuscated baseline.
    let run = Pipeline::new()
        .pass(RopPass::full())
        .verify(VerifyPolicy::Batch)
        .run_program(&program, &["weighted_sum"])?;
    let protected = run.image.clone();
    assert!(run.report.all_verified(), "pipeline verification must pass");
    let rop = run.report.rop_passes();
    let report = &rop.first().expect("one rop pass").rewritten[0];

    println!("original .text: {} bytes", original.text.len());
    println!("protected .text: {} bytes (artificial gadgets appended)", protected.text.len());
    println!(
        "chain: {} bytes at {:#x}, {} gadget slots, {} program points",
        report.chain_len, report.chain_addr, report.stats.gadget_slots, report.program_points
    );

    for x in [1u64, 7, 123] {
        let mut e1 = Emulator::new(&original);
        let mut e2 = Emulator::new(&protected);
        let a = e1.call_named(&original, "weighted_sum", &[x])?;
        let b = e2.call_named(&protected, "weighted_sum", &[x])?;
        assert_eq!(a, b);
        println!(
            "weighted_sum({x}) = {a}   (native {} instr, ROP {} instr)",
            e1.stats().instructions,
            e2.stats().instructions
        );
    }
    Ok(())
}
