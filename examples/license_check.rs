//! A license-check scenario: generate a Tigress-style point-test function,
//! protect it with increasing strength, and attack each variant with the
//! concolic engine under a fixed work budget.
//!
//! Run with `cargo run --release -p raindrop-bench --example license_check`.

use raindrop_attacks::concolic::{DseAttack, DseBudget, Goal, InputSpec};
use raindrop_bench::{prepare_randomfun, ObfKind};
use raindrop_synth::{randomfuns, Goal as RfGoal};
use std::time::Duration;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rf = randomfuns::generate(raindrop_synth::RandomFunConfig {
        structure: randomfuns::Ctrl::for_(randomfuns::Ctrl::if_(
            randomfuns::Ctrl::bb(4),
            randomfuns::Ctrl::bb(4),
        )),
        structure_name: "(for (if (bb 4) (bb 4)))".into(),
        input_size: 4,
        seed: 42,
        goal: RfGoal::SecretFinding,
        loop_size: 4,
    });
    println!("license key (secret input): {:#x}", rf.secret_input);

    let budget = DseBudget {
        total_instructions: 10_000_000,
        per_path_instructions: 2_000_000,
        max_paths: 100,
        max_wall: Duration::from_secs(5),
        ..DseBudget::default()
    };
    for kind in [ObfKind::Native, ObfKind::Rop { k: 0.0 }, ObfKind::Rop { k: 1.0 }] {
        let image = prepare_randomfun(&rf, &kind, 7)?;
        let mut attack =
            DseAttack::new(&image, &rf.name, InputSpec::RegisterArg { size_bytes: 4 }, budget);
        let out = attack.run(Goal::Secret { want: 1 });
        println!(
            "{:<10} cracked={} paths={} instructions={} witness={:?}",
            kind.label(),
            out.success,
            out.paths,
            out.instructions,
            out.witness.map(|w| format!("{:#x}", w[0]))
        );
    }
    Ok(())
}
