//! The attacker's workbench (§VII-A in miniature): take one Tigress-style
//! function, protect it under several Table I configurations, and throw the
//! whole automated toolbox at each variant — DSE for secret finding (G1) and
//! code coverage (G2), taint-driven simplification (A3), ROPMEMU-style flag
//! flipping (A2) and ROPDissector-style gadget guessing (A1).
//!
//! Run with `cargo run --release -p raindrop-bench --example attack_workbench`.

use raindrop::{Rewriter, RopConfig};
use raindrop_attacks::concolic::{DseAttack, DseBudget, Goal, InputSpec};
use raindrop_attacks::{chain_symbol, flip_exploration, gadget_guess, simplify};
use raindrop_bench::{prepare_randomfun, ObfKind};
use raindrop_machine::Image;
use raindrop_obfvm::ImplicitAt;
use raindrop_synth::{
    codegen, generate_randomfun, paper_structures, Goal as RfGoal, RandomFun, RandomFunConfig,
};
use std::time::Duration;

fn protect_rop(rf: &RandomFun, config: RopConfig) -> Image {
    let mut image = codegen::compile(&rf.program).expect("compiles");
    let mut rw = Rewriter::new(config);
    rw.rewrite_function(&mut image, &rf.name).expect("rewrites");
    image
}

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (name, structure) = paper_structures().into_iter().nth(1).unwrap();
    let rf = generate_randomfun(RandomFunConfig {
        structure,
        structure_name: name.clone(),
        input_size: 2,
        seed: 7,
        goal: RfGoal::SecretFinding,
        loop_size: 3,
    });
    let rf_cov = generate_randomfun(RandomFunConfig {
        structure: paper_structures().into_iter().nth(1).unwrap().1,
        structure_name: name,
        input_size: 2,
        seed: 7,
        goal: RfGoal::CodeCoverage,
        loop_size: 3,
    });
    println!(
        "target: {} (secret {:#x}, {} coverage probes)\n",
        rf.name, rf.secret_input, rf_cov.probe_count
    );

    let budget = DseBudget {
        total_instructions: 15_000_000,
        per_path_instructions: 2_000_000,
        max_paths: 120,
        max_wall: Duration::from_secs(10),
        ..DseBudget::default()
    };

    // The variants under test. ROP configurations are built explicitly so P2
    // and gadget confusion are on for the ROP-aware attacks.
    let mut full_rop = RopConfig::full();
    full_rop.seed = 11;
    let variants: Vec<(String, Image, Image)> = vec![
        (
            "NATIVE".to_string(),
            prepare_randomfun(&rf, &ObfKind::Native, 1)?,
            prepare_randomfun(&rf_cov, &ObfKind::Native, 1)?,
        ),
        (
            "2VM-IMPlast".to_string(),
            prepare_randomfun(&rf, &ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last }, 1)?,
            prepare_randomfun(&rf_cov, &ObfKind::Vm { layers: 2, implicit: ImplicitAt::Last }, 1)?,
        ),
        (
            "ROP(plain)".to_string(),
            protect_rop(&rf, RopConfig::plain().with_seed(11)),
            protect_rop(&rf_cov, RopConfig::plain().with_seed(11)),
        ),
        (
            "ROP(full)".to_string(),
            protect_rop(&rf, full_rop.clone()),
            protect_rop(&rf_cov, full_rop),
        ),
    ];

    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>10} {:>9} {:>10} {:>11} {:>10}",
        "config",
        "G1",
        "G1 instr",
        "G2",
        "G2 instr",
        "TDS keep",
        "flip new",
        "flip derail",
        "guess cand"
    );
    for (label, secret_img, cov_img) in &variants {
        let mut g1 =
            DseAttack::new(secret_img, &rf.name, InputSpec::RegisterArg { size_bytes: 2 }, budget);
        let g1_out = g1.run(Goal::Secret { want: 1 });
        let mut g2 =
            DseAttack::new(cov_img, &rf_cov.name, InputSpec::RegisterArg { size_bytes: 2 }, budget);
        let g2_out = g2.run(Goal::Coverage { total_probes: rf_cov.probe_count });

        let tds = simplify(secret_img, &rf.name, rf.secret_input, 100_000_000);
        let flip = flip_exploration(cov_img, &rf_cov.name, 1, 50_000_000);
        let guess = gadget_guess(secret_img, &chain_symbol(&rf.name));

        println!(
            "{:<12} {:>8} {:>10} {:>8} {:>10} {:>8.0}% {:>10} {:>11} {:>10}",
            label,
            if g1_out.success { "cracked" } else { "resists" },
            g1_out.instructions,
            if g2_out.success { "covered" } else { "partial" },
            g2_out.instructions,
            100.0 * tds.relevant as f64 / tds.trace_len.max(1) as f64,
            flip.new_blocks,
            flip.derailed_runs,
            guess.unaligned_candidates,
        );
    }
    println!("\nG1 = secret finding, G2 = code coverage (both under the same fixed budget).");
    println!("TDS keep = fraction of the trace the simplifier must keep; flip = ROPMEMU-style");
    println!("flag flipping; guess = ROPDissector-style speculative gadget candidates.");
    Ok(())
}
