//! Figure 1 of the paper, reproduced by hand: a ROP chain with non-linear
//! control flow that assigns `rdi = 1` when `rax == 0` and `rdi = 2`
//! otherwise, using the `neg`/`adc` carry leak and a variable RSP addend.
//!
//! The example prints the chain layout (gadget addresses interleaved with
//! immediates) and then executes it for a few values of `rax`, tracing the
//! stack pointer so the "RSP as program counter" behaviour is visible.
//!
//! Run with `cargo run --release -p raindrop-bench --example figure1`.

use raindrop_machine::{encode_all, AluOp, Assembler, Emulator, ImageBuilder, Inst, Reg};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A minimal image: one stub function whose bare `ret` ignites the chain.
    let mut stub = Assembler::new();
    stub.inst(Inst::Ret);
    let mut builder = ImageBuilder::new();
    builder.add_function("stub", stub);
    let mut image = builder.build()?;

    // The gadget pool of Figure 1, appended to .text as dead code.
    let mut gadget = |name: &str, insts: &[Inst]| {
        let mut v = insts.to_vec();
        v.push(Inst::Ret);
        let addr = image.append_text(None, &encode_all(&v));
        println!("  gadget {addr:#x}  {name}");
        addr
    };
    println!("gadget pool:");
    let pop_rcx = gadget("pop rcx; ret", &[Inst::Pop(Reg::Rcx)]);
    let neg_rax = gadget("neg rax; ret", &[Inst::Neg(Reg::Rax)]);
    let adc = gadget("adc rcx, rcx; ret", &[Inst::Alu(AluOp::Adc, Reg::Rcx, Reg::Rcx)]);
    let pop_rsi = gadget("pop rsi; ret", &[Inst::Pop(Reg::Rsi)]);
    let neg_rcx = gadget("neg rcx; ret", &[Inst::Neg(Reg::Rcx)]);
    let and_rsi_rcx = gadget("and rsi, rcx; ret", &[Inst::Alu(AluOp::And, Reg::Rsi, Reg::Rcx)]);
    let add_rsp_rsi = gadget("add rsp, rsi; ret", &[Inst::Alu(AluOp::Add, Reg::Rsp, Reg::Rsi)]);
    let pop_rdi = gadget("pop rdi; ret", &[Inst::Pop(Reg::Rdi)]);
    let pop_rsi_rbp = gadget("pop rsi; pop rbp; ret", &[Inst::Pop(Reg::Rsi), Inst::Pop(Reg::Rbp)]);
    let hlt = image.append_text(None, &encode_all(&[Inst::Hlt]));

    // The chain: `rdi = (rax == 0) ? 1 : 2`, then halt.
    let chain: Vec<(u64, &str)> = vec![
        (pop_rcx, "pop rcx"),
        (0x0, "  imm 0"),
        (neg_rax, "neg rax            (CF = rax != 0)"),
        (adc, "adc rcx, rcx       (rcx = CF)"),
        (pop_rsi, "pop rsi"),
        (0x18, "  imm 0x18         (branch displacement)"),
        (neg_rcx, "neg rcx            (0 or -1)"),
        (and_rsi_rcx, "and rsi, rcx       (0 or 0x18)"),
        (add_rsp_rsi, "add rsp, rsi       <-- the ROP branch"),
        (pop_rdi, "pop rdi            fall-through path"),
        (0x1, "  imm 1"),
        (pop_rsi_rbp, "pop rsi; pop rbp   skips the alternative segment"),
        (pop_rdi, "pop rdi            taken path"),
        (0x2, "  imm 2"),
        (hlt, "hlt                (chain end for this demo)"),
    ];

    let mut bytes = Vec::new();
    for (v, _) in &chain {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let chain_addr = image.append_data(Some("fig1_chain"), &bytes);
    println!("\nchain at {chain_addr:#x}:");
    for (i, (v, label)) in chain.iter().enumerate() {
        println!("  +{:#04x}  {v:#012x}  {label}", i * 8);
    }

    for rax in [0u64, 5, u64::MAX] {
        let mut emu = Emulator::new(&image);
        emu.set_tracing(true);
        emu.set_reg(Reg::Rax, rax);
        emu.set_reg(Reg::Rsp, chain_addr);
        emu.cpu.rip = image.symbol("stub")?;
        emu.run()?;
        let trace = emu.take_trace();
        let rsp_path: Vec<String> = trace
            .iter()
            .filter(|e| matches!(e.inst, Inst::Ret))
            .map(|e| format!("+{:#x}", e.rsp_before - chain_addr))
            .collect();
        println!(
            "\nrax = {rax:<22} -> rdi = {}   (RSP visited chain offsets: {})",
            emu.reg(Reg::Rdi),
            rsp_path.join(" ")
        );
        assert_eq!(emu.reg(Reg::Rdi), if rax == 0 { 1 } else { 2 });
    }
    Ok(())
}
