#!/usr/bin/env sh
# Regenerates BENCH_static.json — the static attack surface over the
# workload-class corpus.
#
# Runs the exp_static driver (release build): every registered class is
# measured under NATIVE, ROP1.00, 2VM-IMPlast and both cross-layer
# compositions. Per configuration it reports linear-sweep instruction
# recall and precision against the native ground truth, CFG-reconstruction
# success, and the abstract chain-lifting stats (chains found, opaque-
# branch horizon hits, primary instructions recovered). Every obfuscated
# image is produced under VerifyPolicy::Static, so a dirty static audit
# fails the regeneration.
#
# Run from the repository root:
#   sh scripts/regen_bench_static.sh
#
# Future PRs that change chain layout, gadget shapes, the opaque
# predicates or the VM interpreter should re-run this and commit the
# refreshed JSON.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_static -- "$@"
echo "BENCH_static.json refreshed."
