#!/usr/bin/env sh
# Regenerates BENCH_emu.json — the emulator-dispatch perf trajectory.
#
# Runs the exp_emu_dispatch driver (release build), which measures guest
# instructions/sec on the straight-line / branchy / rop-chain workloads in
# both dispatch modes (predecoded icache vs reference re-decode) and rewrites
# BENCH_emu.json in the repository root. The pre-PR seed-interpreter baseline
# is embedded in the driver and carried over unchanged, so the file always
# keeps the trajectory's origin.
#
# Run from the repository root:
#   sh scripts/regen_bench_emu.sh
#
# Future PRs that move emulator performance should re-run this and commit the
# refreshed JSON (and, when suite wall times shift materially, update the
# README "Performance" table alongside it).
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_emu_dispatch
echo "BENCH_emu.json refreshed."
