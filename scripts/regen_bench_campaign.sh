#!/usr/bin/env sh
# Regenerates BENCH_campaign.json — campaign checkpoint/resume overhead.
#
# Runs the exp_campaign driver (release build), which measures the
# checkpointed attack-campaign driver over a mixed DSE-job corpus: the
# durability cost of an uninterrupted campaign against the direct
# no-orchestration baseline (checkpoint count, bytes, write wall), and a
# scripted kill-and-resume cycle reporting the fraction of emulator work
# re-executed after a mid-campaign crash. All three phases are asserted to
# converge to identical per-job verdicts before the JSON is rewritten in
# the repository root.
#
# Run from the repository root:
#   sh scripts/regen_bench_campaign.sh
#
# Future PRs that move campaign, checkpoint or DSE performance should
# re-run this and commit the refreshed JSON.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_campaign
echo "BENCH_campaign.json refreshed."
