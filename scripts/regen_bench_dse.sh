#!/usr/bin/env sh
# Regenerates BENCH_dse.json — the DSE-explorer perf trajectory.
#
# Runs the exp_dse_speed driver (release build), which measures the fixed
# dse_speed_suite job list under the re-run reference oracle and the
# fork-point engine (1 worker and a fleet sized by RAINDROP_DSE_WORKERS /
# the machine's parallelism) and rewrites BENCH_dse.json in the repository
# root. The frozen pre-PR baseline (the seed explorer before fork-point
# snapshots and constraint caching) is embedded in the driver and carried
# over unchanged, so the file always keeps the trajectory's origin.
#
# Run from the repository root:
#   sh scripts/regen_bench_dse.sh
#
# Future PRs that move DSE performance should re-run this and commit the
# refreshed JSON (and, when the suite results shift materially, update the
# README "Performance" section alongside it).
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_dse_speed
echo "BENCH_dse.json refreshed."
