#!/usr/bin/env sh
# Regenerates BENCH_dse.json — the DSE-explorer perf trajectory.
#
# Runs the exp_dse_speed driver (release build), which measures the fixed
# dse_speed_suite job list under the re-run reference oracle and the
# fork-point engine (1 worker and a fleet sized by RAINDROP_DSE_WORKERS /
# the machine's parallelism), runs the depth-stress workload (symbolic
# fork depth before the first expression-size hazard, against the frozen
# tree-counted baseline), and rewrites BENCH_dse.json in the repository
# root. The frozen baselines (the seed explorer before fork-point
# snapshots and constraint caching; the tree-counted depth-stress run
# before the hash-consed arena) are embedded in the driver and carried
# over unchanged, so the file always keeps the trajectory's origins.
#
# Run from the repository root:
#   sh scripts/regen_bench_dse.sh
#
# Future PRs that move DSE performance should re-run this and commit the
# refreshed JSON (and, when the suite results shift materially, update the
# README "Performance" section alongside it).
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_dse_speed
echo "BENCH_dse.json refreshed."
