#!/usr/bin/env sh
# Regenerates BENCH_serve.json — protection-as-a-service throughput.
#
# Runs the exp_serve driver (release build), which measures raindrop-server
# end to end: a mixed batch of protection requests served cold (empty
# artifact store, every request runs the pipeline) and warm (populated
# store, every request is a cache hit) at each worker count, and rewrites
# BENCH_serve.json in the repository root with protections/sec per cell and
# the warm/cold cache speedup.
#
# Run from the repository root:
#   sh scripts/regen_bench_serve.sh
#
# Future PRs that move server or store performance should re-run this and
# commit the refreshed JSON.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_serve
echo "BENCH_serve.json refreshed."
