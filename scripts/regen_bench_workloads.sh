#!/usr/bin/env sh
# Regenerates BENCH_workloads.json — per-class overhead and attack outcomes
# over the workload-class corpus.
#
# Runs the exp_workloads driver (release build) with the worst-case classes
# included: every class registered in crates/synth/src/classes.rs is
# measured (native cycles, ROP/2VM overhead ratios, native-vs-ROP DSE
# outcomes against each program's point-test wrapper) and reported
# Oxidalloc-style — the benchmark classes form the headline section, the
# adversarial classes (`adversarial-icache`, `adversarial-depth`) are
# reported in a separate worst_case section and are never averaged into
# headline numbers.
#
# Run from the repository root:
#   sh scripts/regen_bench_workloads.sh
#
# Pass --full for the wider configuration sweep and the full DSE budget.
# Future PRs that add a workload class or move obfuscation overhead should
# re-run this and commit the refreshed JSON.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_workloads -- --include-worst-case "$@"
echo "BENCH_workloads.json refreshed."
