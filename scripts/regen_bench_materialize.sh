#!/usr/bin/env sh
# Regenerates BENCH_materialize.json — the chain-materialization perf
# trajectory.
#
# Runs the exp_materialize driver (release build), which measures chain
# resolution and full per-function materialization in fresh-buffer mode
# (per-call allocations) and warm mode (one reusable MaterializeCtx) and
# rewrites BENCH_materialize.json in the repository root. The pre-change
# baseline (free `materialize` before MaterializeCtx existed) is embedded in
# the driver and carried over unchanged, so the file always keeps the
# trajectory's origin.
#
# Run from the repository root:
#   sh scripts/regen_bench_materialize.sh
#
# Future PRs that move materialization performance should re-run this and
# commit the refreshed JSON.
set -eu

cd "$(dirname "$0")/.."
cargo run --release -p raindrop-bench --bin exp_materialize
echo "BENCH_materialize.json refreshed."
